"""Multi-group servers: exact 2-batch evaluation and the merge bounds.

This realizes the paper's future-work item — "approximations and bounds ...
by assuming that all the tasks reallocated to a server arrive ... as a
single batch" — plus an exact order-conditioned evaluator for two batches.
"""

import numpy as np
import pytest

from repro.core import (
    DCSModel,
    HomogeneousNetwork,
    Metric,
    ReallocationPolicy,
    TransformSolver,
)
from repro.core.policy import Transfer
from repro.distributions import Exponential, Pareto, Uniform
from repro.simulation import estimate_metric

from ..conftest import exp_network


def three_server_model(family=Exponential.from_mean):
    net = HomogeneousNetwork(family, latency=0.2, per_task=1.0, fn_mean=0.2)
    return DCSModel(
        service=[family(1.0), family(1.0), family(2.0)], network=net
    )


TWO_BATCH_POLICY = ReallocationPolicy.from_transfers(
    3, [Transfer(0, 2, 4), Transfer(1, 2, 3)]
)
LOADS = [10, 8, 0]


def solver_with(mode, model=None, dt=0.02):
    model = model or three_server_model()
    return TransformSolver.for_workload(model, LOADS, dt=dt, batch_mode=mode)


class TestOrderingOfModes:
    def test_bounds_sandwich_exact(self):
        lo = solver_with("merge-min").average_execution_time(LOADS, TWO_BATCH_POLICY)
        exact = solver_with("exact2").average_execution_time(LOADS, TWO_BATCH_POLICY)
        hi = solver_with("merge-max").average_execution_time(LOADS, TWO_BATCH_POLICY)
        assert lo <= exact <= hi

    def test_exact2_matches_monte_carlo(self, rng):
        model = three_server_model()
        exact = solver_with("exact2", model).average_execution_time(
            LOADS, TWO_BATCH_POLICY
        )
        mc = estimate_metric(
            Metric.AVG_EXECUTION_TIME, model, LOADS, TWO_BATCH_POLICY, 8000, rng
        )
        assert abs(exact - mc.value) < 3 * mc.half_width + 0.02

    def test_exact2_matches_mc_heavy_tails(self, rng):
        model = three_server_model(lambda m: Pareto.from_mean(m, 2.5))
        exact = TransformSolver.for_workload(
            model, LOADS, dt=0.02, batch_mode="exact2"
        ).average_execution_time(LOADS, TWO_BATCH_POLICY)
        mc = estimate_metric(
            Metric.AVG_EXECUTION_TIME, model, LOADS, TWO_BATCH_POLICY, 8000, rng
        )
        assert abs(exact - mc.value) < 3 * mc.half_width + 0.03 * exact

    def test_qos_bounds_bracket_exact(self):
        deadline = 12.0
        lo_solver = solver_with("merge-max")  # later arrivals => lower QoS
        hi_solver = solver_with("merge-min")
        mid_solver = solver_with("exact2")
        q_lo = lo_solver.qos(LOADS, TWO_BATCH_POLICY, deadline)
        q_mid = mid_solver.qos(LOADS, TWO_BATCH_POLICY, deadline)
        q_hi = hi_solver.qos(LOADS, TWO_BATCH_POLICY, deadline)
        assert q_lo - 1e-9 <= q_mid <= q_hi + 1e-9


class TestModeDispatch:
    def test_auto_uses_exact2_for_two_batches(self, rng):
        model = three_server_model()
        auto = TransformSolver.for_workload(model, LOADS, dt=0.02)
        exact = solver_with("exact2", model)
        assert auto.average_execution_time(
            LOADS, TWO_BATCH_POLICY
        ) == pytest.approx(
            exact.average_execution_time(LOADS, TWO_BATCH_POLICY), rel=1e-9
        )

    def test_exact2_rejects_three_batches(self):
        net = exp_network()
        model = DCSModel(service=[Exponential(1.0)] * 4, network=net)
        policy = ReallocationPolicy.from_transfers(
            4, [Transfer(0, 3, 2), Transfer(1, 3, 2), Transfer(2, 3, 2)]
        )
        solver = TransformSolver.for_workload(
            model, [4, 4, 4, 0], dt=0.05, batch_mode="exact2"
        )
        with pytest.raises(ValueError, match="at most two"):
            solver.average_execution_time([4, 4, 4, 0], policy)

    def test_auto_falls_back_to_merge_for_three(self):
        net = exp_network()
        model = DCSModel(service=[Exponential(1.0)] * 4, network=net)
        policy = ReallocationPolicy.from_transfers(
            4, [Transfer(0, 3, 2), Transfer(1, 3, 2), Transfer(2, 3, 2)]
        )
        solver = TransformSolver.for_workload(model, [4, 4, 4, 0], dt=0.05)
        value = solver.average_execution_time([4, 4, 4, 0], policy)
        assert np.isfinite(value) and value > 0

    def test_single_batch_unaffected_by_mode(self):
        model = three_server_model()
        policy = ReallocationPolicy.from_transfers(3, [Transfer(0, 2, 4)])
        values = {
            mode: TransformSolver.for_workload(
                model, LOADS, dt=0.02, batch_mode=mode
            ).average_execution_time(LOADS, policy)
            for mode in ("auto", "exact", "exact2", "merge-max", "merge-min")
        }
        baseline = values["exact"]
        for mode, v in values.items():
            assert v == pytest.approx(baseline, rel=1e-12), mode


class TestGridMassMoments:
    """The var/quantile additions that back the exact2 validation."""

    def test_variance_of_exponential(self):
        from repro.distributions import Grid, from_distribution

        g = Grid(dt=0.005, n=8000)
        m = from_distribution(Exponential(1.0), g)
        assert m.var() == pytest.approx(1.0, rel=0.01)

    def test_variance_of_uniform(self):
        from repro.distributions import Grid, from_distribution

        g = Grid(dt=0.005, n=1000)
        m = from_distribution(Uniform(0.0, 2.0), g)
        assert m.var() == pytest.approx(4.0 / 12.0, rel=0.01)

    def test_quantile_inverts_cdf(self):
        from repro.distributions import Grid, from_distribution

        g = Grid(dt=0.005, n=8000)
        m = from_distribution(Exponential(1.0), g)
        assert m.quantile(0.5) == pytest.approx(np.log(2.0), abs=0.01)
        assert m.quantile(0.0) == pytest.approx(0.0, abs=0.01)

    def test_quantile_in_escaped_tail_is_inf(self):
        from repro.distributions import Grid, from_distribution

        g = Grid(dt=0.1, n=20)  # horizon ~2, mean 5
        m = from_distribution(Exponential(0.2), g)
        assert m.quantile(0.99) == np.inf

    def test_quantile_rejects_bad_level(self):
        from repro.distributions import Grid, from_distribution

        m = from_distribution(Exponential(1.0), Grid(dt=0.01, n=100))
        with pytest.raises(ValueError):
            m.quantile(1.2)

    def test_infinite_variance_detected(self):
        from repro.distributions import Grid, from_distribution

        g = Grid(dt=0.01, n=5000)
        m = from_distribution(Pareto.from_mean(1.0, 1.5), g)
        assert m.var() == np.inf
