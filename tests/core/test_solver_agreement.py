"""Cross-solver agreement — the backbone of the reproduction's validity.

DESIGN.md Sec. 6: the transform solver must agree with the Markovian
recursion whenever every clock is exponential, and with the faithful
Theorem 1 recursion on small non-exponential instances.
"""

import pytest

from repro.core import (
    DCSModel,
    HomogeneousNetwork,
    MarkovianSolver,
    ReallocationPolicy,
    Theorem1Solver,
    TransformSolver,
)
from repro.distributions import Exponential, Pareto, ShiftedExponential, Uniform, Weibull

from ..conftest import exp_network, small_exp_model

POLICIES = [
    ReallocationPolicy.none(2),
    ReallocationPolicy.two_server(2, 0),
    ReallocationPolicy.two_server(3, 2),
]
POLICY_IDS = ["none", "L12=2", "L12=3,L21=2"]


class TestTransformVsMarkovian:
    """Exponential clocks: the two independent implementations must agree."""

    @pytest.mark.parametrize("policy", POLICIES, ids=POLICY_IDS)
    def test_average_execution_time(self, policy):
        model = small_exp_model()
        loads = [6, 4]
        exact = MarkovianSolver(model).average_execution_time(loads, policy)
        grid = TransformSolver.for_workload(model, loads, dt=0.005)
        assert grid.average_execution_time(loads, policy) == pytest.approx(
            exact, rel=3e-3
        )

    @pytest.mark.parametrize("policy", POLICIES, ids=POLICY_IDS)
    def test_reliability(self, policy):
        model = small_exp_model(with_failures=True)
        loads = [6, 4]
        exact = MarkovianSolver(model).reliability(loads, policy)
        grid = TransformSolver.for_workload(model, loads, dt=0.005)
        assert grid.reliability(loads, policy) == pytest.approx(exact, abs=3e-3)

    @pytest.mark.parametrize("deadline", [5.0, 12.0, 25.0])
    def test_qos_reliable(self, deadline):
        model = small_exp_model()
        loads = [6, 4]
        policy = ReallocationPolicy.two_server(2, 1)
        exact = MarkovianSolver(model).qos(loads, policy, deadline)
        grid = TransformSolver.for_workload(model, loads, dt=0.005)
        assert grid.qos(loads, policy, deadline) == pytest.approx(exact, abs=3e-3)

    def test_qos_with_failures(self):
        model = small_exp_model(with_failures=True)
        loads = [4, 3]
        policy = ReallocationPolicy.two_server(1, 0)
        exact = MarkovianSolver(model).qos(loads, policy, 10.0)
        grid = TransformSolver.for_workload(model, loads, dt=0.005)
        assert grid.qos(loads, policy, 10.0) == pytest.approx(exact, abs=3e-3)

    def test_paper_scale_agreement(self):
        """The full (100, 50) workload of Sec. III-A, exponential model."""
        from repro.workloads import two_server_scenario

        sc = two_server_scenario("exponential", delay="severe", with_failures=False)
        loads = list(sc.loads)
        policy = ReallocationPolicy.two_server(32, 1)
        exact = MarkovianSolver(sc.model).average_execution_time(loads, policy)
        grid = TransformSolver.for_workload(sc.model, loads, dt=0.02)
        assert grid.average_execution_time(loads, policy) == pytest.approx(
            exact, rel=2e-3
        )


class TestTransformVsTheorem1:
    """Small non-exponential instances: the faithful recursion agrees."""

    def _network(self, family):
        return HomogeneousNetwork(family, latency=0.2, per_task=1.0, fn_mean=0.2)

    @pytest.mark.parametrize(
        "family,name",
        [
            (Uniform.from_mean, "uniform"),
            (ShiftedExponential.from_mean, "shifted-exp"),
            (lambda m: Pareto.from_mean(m, 2.5), "pareto1"),
            (lambda m: Weibull.from_mean(m, 2.0), "weibull"),
        ],
        ids=["uniform", "shifted-exp", "pareto1", "weibull"],
    )
    def test_average_time_no_transfers(self, family, name):
        model = DCSModel(
            service=[family(2.0), family(1.0)],
            network=exp_network(),
        )
        loads = [3, 2]
        policy = ReallocationPolicy.none(2)
        fine = TransformSolver.for_workload(model, loads, dt=0.002)
        reference = fine.average_execution_time(loads, policy)
        # heavy tails need a truncated (renormalized) quadrature horizon to
        # stay tractable; the induced bias is far below the tolerance
        recursive = Theorem1Solver(
            model, ds=0.1, survival_eps=1e-4
        ).average_execution_time(loads, policy)
        assert recursive == pytest.approx(reference, rel=0.02)

    def test_average_time_with_exponential_transfers(self):
        """Non-exponential services, memoryless transfer clocks."""
        model = DCSModel(
            service=[Uniform.from_mean(2.0), Uniform.from_mean(1.0)],
            network=exp_network(),
        )
        loads = [3, 2]
        policy = ReallocationPolicy.two_server(1, 0)
        reference = TransformSolver.for_workload(
            model, loads, dt=0.002
        ).average_execution_time(loads, policy)
        recursive = Theorem1Solver(model, ds=0.1).average_execution_time(
            loads, policy
        )
        assert recursive == pytest.approx(reference, rel=0.02)

    def test_average_time_with_aging_transfer_clock(self):
        """A non-exponential group transfer keeps a real age in the recursion."""
        net = HomogeneousNetwork(
            ShiftedExponential.from_mean, latency=0.2, per_task=1.0, fn_mean=0.2
        )
        model = DCSModel(
            service=[Exponential.from_mean(2.0), Exponential.from_mean(1.0)],
            network=net,
        )
        loads = [3, 2]
        policy = ReallocationPolicy.two_server(2, 0)
        reference = TransformSolver.for_workload(
            model, loads, dt=0.002
        ).average_execution_time(loads, policy)
        recursive = Theorem1Solver(model, ds=0.1).average_execution_time(
            loads, policy
        )
        assert recursive == pytest.approx(reference, rel=0.02)

    def test_reliability_small_instance(self):
        model = DCSModel(
            service=[Uniform.from_mean(2.0), Uniform.from_mean(1.0)],
            network=exp_network(),
            failure=[Exponential.from_mean(15.0), Exponential.from_mean(8.0)],
        )
        loads = [2, 2]
        policy = ReallocationPolicy.two_server(1, 0)
        reference = TransformSolver.for_workload(model, loads, dt=0.002).reliability(
            loads, policy
        )
        recursive = Theorem1Solver(model, ds=0.1).reliability(loads, policy)
        assert recursive == pytest.approx(reference, abs=0.01)

    def test_qos_small_instance(self):
        model = DCSModel(
            service=[Uniform.from_mean(2.0), Uniform.from_mean(1.0)],
            network=exp_network(),
        )
        loads = [2, 2]
        policy = ReallocationPolicy.none(2)
        deadline = 6.0
        reference = TransformSolver.for_workload(model, loads, dt=0.002).qos(
            loads, policy, deadline
        )
        recursive = Theorem1Solver(model, ds=0.1).qos(loads, policy, deadline)
        assert recursive == pytest.approx(reference, abs=0.03)


class TestTheorem1VsMarkovian:
    """All-exponential: the age machinery must collapse to the Markov chain."""

    def test_average_time(self):
        model = small_exp_model()
        loads = [4, 3]
        policy = ReallocationPolicy.two_server(2, 1)
        exact = MarkovianSolver(model).average_execution_time(loads, policy)
        recursive = Theorem1Solver(model, ds=0.1).average_execution_time(
            loads, policy
        )
        assert recursive == pytest.approx(exact, rel=0.01)

    def test_reliability(self):
        model = small_exp_model(with_failures=True)
        loads = [3, 2]
        policy = ReallocationPolicy.two_server(1, 1)
        exact = MarkovianSolver(model).reliability(loads, policy)
        recursive = Theorem1Solver(model, ds=0.1).reliability(loads, policy)
        assert recursive == pytest.approx(exact, abs=0.01)
