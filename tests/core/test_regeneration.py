"""The age-dependent regeneration calculus (paper Sec. II-C).

The exponential special cases have closed forms — ``τ = min of Exp(λ_i)`` is
``Exp(Σλ_i)`` and ``P{τ = X_j} = λ_j / Σλ`` — which pin the implementation
down exactly; non-exponential cases are checked against Monte Carlo.
"""

import math

import numpy as np
import pytest

from repro.core import Clock, RegenerationCalculus, quadrature_nodes
from repro.distributions import Exponential, Pareto, ShiftedExponential, Uniform


def exp_clocks(*rates):
    return [Clock("service", i, Exponential(r)) for i, r in enumerate(rates)]


class TestClock:
    def test_aged_sf_identity(self):
        c = Clock("service", 0, Uniform(0.0, 4.0), age=1.0)
        s = np.array([0.5, 1.5])
        expected = np.array([2.5 / 3.0, 1.5 / 3.0])
        np.testing.assert_allclose(c.aged_sf(s), expected, rtol=1e-12)

    def test_rejects_negative_age(self):
        with pytest.raises(ValueError):
            Clock("service", 0, Exponential(1.0), age=-1.0)

    def test_rejects_age_past_support(self):
        with pytest.raises(ValueError):
            Clock("service", 0, Uniform(0.0, 1.0), age=1.5)

    def test_horizon_finite_support(self):
        c = Clock("service", 0, Uniform(0.0, 4.0), age=1.0)
        assert c.horizon() == pytest.approx(3.0)

    def test_horizon_infinite_support(self):
        c = Clock("service", 0, Exponential(1.0))
        assert c.horizon(eps=1e-6) == pytest.approx(-math.log(1e-6), rel=1e-3)


class TestExponentialClosedForms:
    def test_expected_tau(self):
        calc = RegenerationCalculus(exp_clocks(1.0, 2.0, 3.0))
        assert calc.expected_tau() == pytest.approx(1.0 / 6.0, rel=1e-3)

    def test_event_probabilities(self):
        calc = RegenerationCalculus(exp_clocks(1.0, 2.0, 3.0))
        np.testing.assert_allclose(
            calc.event_probabilities(), [1 / 6, 2 / 6, 3 / 6], atol=2e-3
        )

    def test_regeneration_pdf_is_exponential(self):
        calc = RegenerationCalculus(exp_clocks(1.0, 2.0))
        s = calc.nodes
        np.testing.assert_allclose(
            calc.regeneration_pdf(), 3.0 * np.exp(-3.0 * s), rtol=1e-9
        )

    def test_conditional_probabilities_constant(self):
        """Markovian setting: P{X = τ | τ = s} does not depend on s."""
        calc = RegenerationCalculus(exp_clocks(1.0, 3.0))
        cond = calc.conditional_event_probability()
        np.testing.assert_allclose(cond[0], 0.25, atol=1e-9)
        np.testing.assert_allclose(cond[1], 0.75, atol=1e-9)

    def test_aging_changes_nothing_for_exponentials(self):
        young = RegenerationCalculus(exp_clocks(1.0, 2.0))
        old_clocks = [
            Clock("service", 0, Exponential(1.0), age=5.0),
            Clock("service", 1, Exponential(2.0), age=2.0),
        ]
        old = RegenerationCalculus(old_clocks, nodes=young.nodes)
        np.testing.assert_allclose(
            young.event_probabilities(), old.event_probabilities(), rtol=1e-9
        )


class TestNonExponential:
    def test_conditional_probabilities_age_dependent(self):
        """The paper's first Markovian/non-Markovian difference."""
        clocks = [
            Clock("service", 0, Uniform(0.0, 2.0)),
            Clock("service", 1, Exponential(0.5)),
        ]
        calc = RegenerationCalculus(clocks)
        cond = calc.conditional_event_probability()
        assert cond[0, 10] != pytest.approx(cond[0, -10], abs=1e-3)

    def test_event_probabilities_sum_to_one(self):
        clocks = [
            Clock("service", 0, Uniform(0.0, 2.0)),
            Clock("transit", 0, ShiftedExponential(0.5, 1.0)),
            Clock("failure", 1, Exponential(0.1)),
        ]
        calc = RegenerationCalculus(clocks, nodes=np.linspace(0, 2.0, 4001))
        assert calc.event_probabilities().sum() == pytest.approx(1.0, abs=2e-3)

    def test_against_monte_carlo(self):
        rng = np.random.default_rng(5)
        dists = [Uniform(0.0, 3.0), Pareto(2.5, 0.4), Exponential(0.8)]
        clocks = [Clock("service", i, d) for i, d in enumerate(dists)]
        calc = RegenerationCalculus(clocks, nodes=np.linspace(0, 3.0, 6001))
        n = 200_000
        samples = np.stack([np.asarray(d.sample(rng, n)) for d in dists])
        mins = samples.min(axis=0)
        winner = samples.argmin(axis=0)
        assert calc.expected_tau() == pytest.approx(float(mins.mean()), rel=0.01)
        emp = np.bincount(winner, minlength=3) / n
        np.testing.assert_allclose(calc.event_probabilities(), emp, atol=0.01)

    def test_aged_clock_against_monte_carlo(self):
        rng = np.random.default_rng(6)
        base = Pareto(2.0, 1.0)
        aged_clock = Clock("service", 0, base, age=2.0)
        other = Clock("service", 1, Exponential(0.5))
        calc = RegenerationCalculus(
            [aged_clock, other], nodes=np.linspace(0, 60.0, 8001)
        )
        n = 300_000
        pareto_res = np.asarray(base.aged(2.0).sample(rng, n))
        expo = np.asarray(Exponential(0.5).sample(rng, n))
        p_first = float(np.mean(pareto_res < expo))
        probs = calc.event_probabilities()
        assert probs[0] == pytest.approx(p_first, abs=0.01)


class TestValidation:
    def test_empty_clocks_rejected(self):
        with pytest.raises(ValueError):
            RegenerationCalculus([])
        with pytest.raises(ValueError):
            quadrature_nodes([])

    def test_bad_nodes_rejected(self):
        with pytest.raises(ValueError):
            RegenerationCalculus(exp_clocks(1.0), nodes=np.array([0.0]))

    def test_quadrature_nodes_cover_shortest_clock(self):
        clocks = [
            Clock("service", 0, Uniform(0.0, 2.0)),
            Clock("service", 1, Exponential(0.01)),
        ]
        nodes = quadrature_nodes(clocks)
        assert nodes[-1] == pytest.approx(2.0)
