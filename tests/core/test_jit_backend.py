"""The ``kernel="jit"`` backend: agreement with direct/spectral, graceful
degradation without numba, and the sparse/rank-2 fast paths behind it."""

import warnings

import numpy as np
import pytest

from repro.core import (
    KernelFallbackWarning,
    Metric,
    TransformSolver,
    TwoServerOptimizer,
)
from repro.core.cache import SolverCache
from repro.core.convolution import reset_jit_fallback_warning
from repro.core.policy import ReallocationPolicy
from repro.core.system import DCSModel, HomogeneousNetwork
from repro.distributions import Exponential, Pareto
from repro.distributions.jit_kernels import HAVE_NUMBA

from ..conftest import small_exp_model

LOADS = [6, 4]


def pareto_model(with_failures: bool = True) -> DCSModel:
    network = HomogeneousNetwork(
        lambda m: Pareto.from_mean(m, 2.5), latency=0.5, per_task=0.3, fn_mean=1.0
    )
    failure = None
    if with_failures:
        failure = [Exponential.from_mean(50.0), Exponential.from_mean(40.0)]
    return DCSModel(
        service=[Pareto.from_mean(2.0, 2.5), Pareto.from_mean(1.0, 2.5)],
        network=network,
        failure=failure,
    )


def three_server_model() -> DCSModel:
    """Middle server receives from both neighbours -> two incoming batches,
    exercising the rank-2 exact2 finish-time path."""
    network = HomogeneousNetwork(
        Exponential.from_mean, latency=0.4, per_task=0.2, fn_mean=0.5
    )
    return DCSModel(
        service=[
            Exponential.from_mean(2.0),
            Exponential.from_mean(1.0),
            Exponential.from_mean(1.5),
        ],
        network=network,
        failure=[Exponential.from_mean(30.0)] * 3,
    )


def make_solver(kernel, model=None, loads=LOADS, dt=0.1):
    return TransformSolver.for_workload(
        model or pareto_model(), list(loads), dt=dt, cache=None, kernel=kernel
    )


@pytest.fixture(autouse=True)
def _fresh_warning_state():
    reset_jit_fallback_warning()
    yield
    reset_jit_fallback_warning()


def request_jit(**kwargs):
    """Build a jit-kernel solver, tolerating the no-numba degradation warning."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", KernelFallbackWarning)
        return make_solver("jit", **kwargs)


class TestFallbackContract:
    def test_jit_without_numba_degrades_to_spectral_once(self):
        if HAVE_NUMBA:
            pytest.skip("numba present: no degradation to observe")
        with pytest.warns(KernelFallbackWarning) as caught:
            solver = make_solver("jit")
        assert len(caught) == 1
        w = caught[0].message
        assert w.where == "TransformSolver.__init__"
        assert w.kernel == "jit"
        assert w.fallback == "spectral"
        assert "numba" in w.reason
        assert solver.kernel == "spectral"
        assert solver.requested_kernel == "jit"
        # the warning is one-time: further jit solvers stay silent
        with warnings.catch_warnings():
            warnings.simplefilter("error", KernelFallbackWarning)
            second = make_solver("jit")
        assert second.kernel == "spectral"

    def test_jit_with_numba_keeps_the_kernel(self):
        if not HAVE_NUMBA:
            pytest.skip("needs numba")
        with warnings.catch_warnings():
            warnings.simplefilter("error", KernelFallbackWarning)
            solver = make_solver("jit")
        assert solver.kernel == "jit"

    def test_degraded_jit_results_identical_to_spectral(self):
        if HAVE_NUMBA:
            pytest.skip("numba present: jit runs compiled kernels")
        policy = ReallocationPolicy.two_server(2, 1)
        jit_solver = request_jit()
        spec_solver = make_solver("spectral")
        v_jit = jit_solver.evaluate(Metric.RELIABILITY, LOADS, policy)
        v_spec = spec_solver.evaluate(Metric.RELIABILITY, LOADS, policy)
        assert v_jit.value == v_spec.value  # bit-identical, not just close
        s_jit = jit_solver.evaluate_lattice(
            Metric.RELIABILITY, LOADS, [0, 2, 4], [0, 1, 3]
        )
        s_spec = spec_solver.evaluate_lattice(
            Metric.RELIABILITY, LOADS, [0, 2, 4], [0, 1, 3]
        )
        np.testing.assert_array_equal(s_jit, s_spec)


class TestAgreementWithDirect:
    @pytest.mark.parametrize("metric", [Metric.RELIABILITY, Metric.QOS])
    def test_lattice_agrees_with_direct_kernel(self, metric):
        deadline = 25.0 if metric is Metric.QOS else None
        l12s, l21s = [0, 2, 4, 6], [0, 1, 2]
        jit_surface = request_jit().evaluate_lattice(
            metric, LOADS, l12s, l21s, deadline=deadline
        )
        direct_surface = make_solver("direct").evaluate_lattice(
            metric, LOADS, l12s, l21s, deadline=deadline
        )
        np.testing.assert_allclose(jit_surface, direct_surface, atol=1e-9)

    def test_avg_time_lattice_agrees_with_direct(self):
        model = pareto_model(with_failures=False)
        jit_surface = request_jit(model=model).evaluate_lattice(
            Metric.AVG_EXECUTION_TIME, LOADS, [0, 2, 4], [0, 1, 2]
        )
        direct_surface = make_solver("direct", model=model).evaluate_lattice(
            Metric.AVG_EXECUTION_TIME, LOADS, [0, 2, 4], [0, 1, 2]
        )
        np.testing.assert_allclose(jit_surface, direct_surface, atol=1e-9, rtol=1e-9)

    def test_two_incoming_batches_agree_with_direct(self):
        """The rank-2 exact2 reformulation vs the direct per-policy kernel."""
        model = three_server_model()
        loads = [5, 2, 4]
        matrix = np.zeros((3, 3), dtype=np.int64)
        matrix[0, 1] = 2
        matrix[2, 1] = 2
        policy = ReallocationPolicy(matrix)
        jit_solver = request_jit(model=model, loads=loads, dt=0.2)
        direct = make_solver("direct", model=model, loads=loads, dt=0.2)
        v_jit = jit_solver.evaluate(Metric.RELIABILITY, loads, policy)
        v_direct = direct.evaluate(Metric.RELIABILITY, loads, policy)
        assert abs(v_jit.value - v_direct.value) <= 1e-9

    def test_optimizer_finds_the_same_optimum(self):
        jit_best = TwoServerOptimizer(request_jit()).optimize(
            Metric.RELIABILITY, LOADS
        )
        direct_best = TwoServerOptimizer(
            make_solver("direct"), batched=False
        ).optimize(Metric.RELIABILITY, LOADS)
        assert (jit_best.l12, jit_best.l21) == (direct_best.l12, direct_best.l21)
        assert abs(jit_best.value - direct_best.value) <= 1e-9


class TestSparseLadder:
    def test_service_sums_at_matches_dense_ladder(self):
        solver = make_solver("spectral", model=small_exp_model(True), dt=0.05)
        dense = solver.service_sums(0, 6)
        sparse = solver._service_sums_at(0, [2, 5, 6])
        assert sorted(sparse) == [2, 5, 6]
        for k, gm in sparse.items():
            np.testing.assert_allclose(gm.mass, dense[k].mass, atol=1e-12)

    def test_sparse_extras_are_cached_across_calls(self):
        cache = SolverCache()
        solver = TransformSolver.for_workload(
            small_exp_model(True), LOADS, dt=0.05, cache=cache, kernel="spectral"
        )
        first = solver._service_sums_at(0, [5])
        second = solver._service_sums_at(0, [5])
        assert first[5] is second[5]  # served from the shared extras store

    def test_direct_kernel_uses_dense_path(self):
        solver = make_solver("direct", model=small_exp_model(True), dt=0.05)
        out = solver._service_sums_at(0, [3])
        dense = solver.service_sums(0, 3)
        np.testing.assert_allclose(out[3].mass, dense[3].mass, atol=1e-12)
