"""Baseline policies: proportional, water-filling, all-to-fastest."""

import pytest

from repro.core import DCSModel, TransformSolver
from repro.core.baselines import (
    all_to_fastest,
    no_action,
    proportional_policy,
    water_filling_policy,
)
from repro.distributions import Exponential

from ..conftest import exp_network, small_exp_model


class TestNoAction:
    def test_moves_nothing(self):
        assert no_action(3).matrix.sum() == 0


class TestProportional:
    def test_totals_conserved_exactly(self):
        policy = proportional_policy([17, 3, 0], [1.0, 2.0, 3.0])
        final = policy.residual_loads([17, 3, 0]) + [
            policy.inflow(j) for j in range(3)
        ]
        assert final.sum() == 20

    def test_allocation_follows_weights(self):
        policy = proportional_policy([30, 0, 0], [1.0, 1.0, 2.0])
        final = policy.residual_loads([30, 0, 0]) + [
            policy.inflow(j) for j in range(3)
        ]
        assert abs(int(final[2]) - 15) <= 1
        assert abs(int(final[0]) - 7) <= 1

    def test_largest_remainder_rounding(self):
        """7 tasks over 2 equal servers: 4 + 3, never 3 + 3 or 4 + 4."""
        policy = proportional_policy([7, 0], [1.0, 1.0])
        final = policy.residual_loads([7, 0]) + [policy.inflow(j) for j in range(2)]
        assert sorted(int(x) for x in final) == [3, 4]

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            proportional_policy([5, 5], [1.0])
        with pytest.raises(ValueError):
            proportional_policy([5, 5], [1.0, 0.0])


class TestWaterFilling:
    def test_balances_expected_completion(self):
        model = small_exp_model()  # means 2 and 1 -> speeds 0.5, 1.0
        policy = water_filling_policy([30, 0], model)
        final = policy.residual_loads([30, 0]) + [policy.inflow(j) for j in range(2)]
        # allocation ratio should match the speed ratio 1:2
        assert int(final[0]) == 10
        assert int(final[1]) == 20

    def test_beats_no_action_when_transfers_cheap(self):
        model = DCSModel(
            service=[Exponential.from_mean(2.0), Exponential.from_mean(1.0)],
            network=exp_network(latency=0.01, per_task=0.01),
        )
        solver = TransformSolver.for_workload(model, [30, 0], dt=0.02)
        wf = solver.average_execution_time([30, 0], water_filling_policy([30, 0], model))
        nothing = solver.average_execution_time([30, 0], no_action(2))
        assert wf < 0.6 * nothing


class TestAllToFastest:
    def test_targets_fastest_server(self):
        model = small_exp_model()
        policy = all_to_fastest([10, 5], model)
        final = policy.residual_loads([10, 5]) + [policy.inflow(j) for j in range(2)]
        assert list(final) == [0, 15]

    def test_is_bad_under_severe_delay(self):
        """Sanity of the 'deliberately bad' label: severe transfers hurt."""
        from repro.workloads import two_server_scenario

        sc = two_server_scenario("pareto1", delay="severe", with_failures=False)
        loads = [20, 10]
        solver = TransformSolver.for_workload(sc.model, loads, dt=0.05)
        greedy = solver.average_execution_time(
            loads, all_to_fastest(loads, sc.model)
        )
        nothing = solver.average_execution_time(loads, no_action(2))
        assert greedy > 0.9 * nothing  # shipping everything is not a free win
