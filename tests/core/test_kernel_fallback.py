"""Graceful solver degradation: spectral -> direct kernel fallback and the
optimizers' batched -> per-cell degradation, none of which may abort a sweep."""

import math

import numpy as np
import pytest

from repro._contracts import ContractViolation
from repro.core import (
    Algorithm1,
    KernelFallbackWarning,
    Metric,
    TransformSolver,
    TwoServerOptimizer,
    sweep_policies,
)
from repro.core.policy import ReallocationPolicy

from ..conftest import small_exp_model

LOADS = [5, 3]


def make_solver(kernel="spectral"):
    # cache=None: poisoned spectral results must never leak into the
    # process-wide cache other tests read
    return TransformSolver.for_workload(
        small_exp_model(with_failures=True), LOADS, dt=0.05, cache=None, kernel=kernel
    )


@pytest.fixture
def poisoned_values(monkeypatch):
    """Make every *spectral* scalar evaluation return NaN (direct untouched)."""
    real = TransformSolver._evaluate_value

    def poisoned(self, metric, loads, policy, deadline):
        if self.kernel == "spectral":
            return math.nan
        return real(self, metric, loads, policy, deadline)

    monkeypatch.setattr(TransformSolver, "_evaluate_value", poisoned)


@pytest.fixture
def poisoned_surfaces(monkeypatch):
    """Make every *spectral* lattice surface raise a contract violation."""
    real = TransformSolver._lattice_surface

    def poisoned(self, metric, m1, m2, l12s, l21s, deadline, *args):
        if self.kernel == "spectral":
            raise ContractViolation("poisoned spectral surface")
        return real(self, metric, m1, m2, l12s, l21s, deadline, *args)

    monkeypatch.setattr(TransformSolver, "_lattice_surface", poisoned)


class TestEvaluateFallback:
    def test_nan_value_falls_back_to_the_direct_kernel(self, poisoned_values):
        policy = ReallocationPolicy.two_server(2, 1)
        reference = make_solver("direct").evaluate(Metric.RELIABILITY, LOADS, policy)
        with pytest.warns(KernelFallbackWarning):
            value = make_solver().evaluate(Metric.RELIABILITY, LOADS, policy)
        assert value.value == reference.value
        assert 0.0 <= value.value <= 1.0

    def test_warning_carries_structured_fields(self, poisoned_values):
        policy = ReallocationPolicy.two_server(2, 1)
        with pytest.warns(KernelFallbackWarning) as caught:
            make_solver().evaluate(Metric.RELIABILITY, LOADS, policy)
        w = caught[0].message
        assert w.where == "TransformSolver.evaluate"
        assert w.kernel == "spectral"
        assert "non-finite" in w.reason

    def test_direct_kernel_defect_raises_instead_of_looping(self, monkeypatch):
        monkeypatch.setattr(
            TransformSolver,
            "_evaluate_value",
            lambda self, metric, loads, policy, deadline: math.nan,
        )
        policy = ReallocationPolicy.two_server(2, 1)
        with pytest.raises(ContractViolation, match="direct"):
            with pytest.warns(KernelFallbackWarning):
                make_solver().evaluate(Metric.RELIABILITY, LOADS, policy)

    def test_healthy_solver_emits_no_warning(self):
        import warnings as _warnings

        policy = ReallocationPolicy.two_server(2, 1)
        with _warnings.catch_warnings():
            _warnings.simplefilter("error", KernelFallbackWarning)
            make_solver().evaluate(Metric.RELIABILITY, LOADS, policy)


class TestLatticeFallback:
    def test_contract_violation_falls_back_to_the_direct_surface(
        self, poisoned_surfaces
    ):
        l12s, l21s = [0, 1, 2], [0, 1]
        reference = make_solver("direct").evaluate_lattice(
            Metric.RELIABILITY, LOADS, l12s, l21s
        )
        with pytest.warns(KernelFallbackWarning) as caught:
            surface = make_solver().evaluate_lattice(
                Metric.RELIABILITY, LOADS, l12s, l21s
            )
        np.testing.assert_array_equal(surface, reference)
        w = caught[0].message
        assert w.where == "TransformSolver.evaluate_lattice"
        assert "contract violation" in w.reason


class BrokenLatticeSolver:
    """Per-policy evaluation works; the batched surface always explodes."""

    def __init__(self, inner):
        self._inner = inner
        self.lattice_calls = 0

    def evaluate(self, metric, loads, policy, deadline=None):
        return self._inner.evaluate(metric, loads, policy, deadline=deadline)

    def evaluate_lattice(self, *args, **kwargs):
        self.lattice_calls += 1
        raise ContractViolation("poisoned batched surface")


class TestOptimizerDegradation:
    def test_optimizer_degrades_to_per_cell_and_finds_the_same_optimum(self):
        inner = make_solver("direct")
        reference = TwoServerOptimizer(inner, batched=False).optimize(
            Metric.RELIABILITY, LOADS
        )
        broken = BrokenLatticeSolver(inner)
        with pytest.warns(RuntimeWarning, match="degrading to per-cell"):
            degraded = TwoServerOptimizer(broken).optimize(Metric.RELIABILITY, LOADS)
        assert broken.lattice_calls > 0
        assert (degraded.l12, degraded.l21) == (reference.l12, reference.l21)
        assert degraded.value == reference.value

    def test_sweep_is_not_aborted_by_a_poisoned_spectral_surface(
        self, poisoned_surfaces
    ):
        l12s, l21s = [0, 1, 2], [0, 1, 2, 3]
        reference = sweep_policies(
            make_solver("direct"), Metric.RELIABILITY, LOADS, l12s, l21s
        )
        with pytest.warns(KernelFallbackWarning):
            surface = sweep_policies(
                make_solver(), Metric.RELIABILITY, LOADS, l12s, l21s
            )
        np.testing.assert_array_equal(surface, reference)


class TestAlgorithm1Degradation:
    def test_broken_batched_candidates_degrade_to_per_point(self):
        model = small_exp_model(with_failures=True)
        factory_calls = []

        def broken_factory(pair_model, total_tasks):
            solver = BrokenLatticeSolver(
                TransformSolver.for_workload(
                    pair_model, [total_tasks, total_tasks], dt=0.05,
                    cache=None, kernel="direct",
                )
            )
            factory_calls.append(solver)
            return solver

        algo = Algorithm1(
            model,
            Metric.RELIABILITY,
            max_iterations=1,
            pair_solver_factory=broken_factory,
        )
        with pytest.warns(RuntimeWarning, match="degrading to per-point"):
            result = algo.run(LOADS)
        assert any(s.lattice_calls > 0 for s in factory_calls)
        assert result.policy.matrix.shape == (2, 2)
