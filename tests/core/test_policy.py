"""ReallocationPolicy: the paper's L matrix and its feasibility rules."""

import numpy as np
import pytest

from repro.core import ReallocationPolicy, Transfer


class TestConstruction:
    def test_two_server(self):
        p = ReallocationPolicy.two_server(30, 5)
        assert p[0, 1] == 30
        assert p[1, 0] == 5
        assert p.n == 2

    def test_none_policy(self):
        p = ReallocationPolicy.none(4)
        assert p.n == 4
        assert not p.transfers()

    def test_from_transfers_accumulates(self):
        p = ReallocationPolicy.from_transfers(
            3, [Transfer(0, 1, 5), Transfer(0, 1, 3), Transfer(2, 0, 1)]
        )
        assert p[0, 1] == 8
        assert p[2, 0] == 1

    def test_from_transfers_rejects_self(self):
        with pytest.raises(ValueError):
            ReallocationPolicy.from_transfers(3, [Transfer(1, 1, 5)])

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            ReallocationPolicy([[0, 1, 2], [0, 0, 1]])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ReallocationPolicy([[0, -1], [0, 0]])

    def test_rejects_nonzero_diagonal(self):
        with pytest.raises(ValueError):
            ReallocationPolicy([[1, 0], [0, 0]])

    def test_matrix_is_readonly(self):
        p = ReallocationPolicy.two_server(1, 2)
        with pytest.raises(ValueError):
            p.matrix[0, 1] = 99


class TestSemantics:
    def test_flows(self):
        p = ReallocationPolicy([[0, 3, 2], [1, 0, 0], [0, 0, 0]])
        assert p.outflow(0) == 5
        assert p.inflow(0) == 1
        assert p.inflow(2) == 2

    def test_transfers_ordering(self):
        p = ReallocationPolicy([[0, 3, 2], [1, 0, 0], [0, 0, 0]])
        ts = p.transfers()
        assert ts == [Transfer(0, 1, 3), Transfer(0, 2, 2), Transfer(1, 0, 1)]

    def test_residual_loads(self):
        p = ReallocationPolicy.two_server(30, 5)
        np.testing.assert_array_equal(p.residual_loads([100, 50]), [70, 45])

    def test_validate_rejects_oversend(self):
        p = ReallocationPolicy.two_server(101, 0)
        with pytest.raises(ValueError, match="server 0 sends 101"):
            p.validate_against([100, 50])

    def test_validate_rejects_wrong_length(self):
        p = ReallocationPolicy.two_server(1, 0)
        with pytest.raises(ValueError):
            p.validate_against([100, 50, 10])

    def test_validate_rejects_negative_loads(self):
        p = ReallocationPolicy.two_server(0, 0)
        with pytest.raises(ValueError):
            p.validate_against([-1, 5])

    def test_sending_everything_is_feasible(self):
        p = ReallocationPolicy.two_server(100, 50)
        np.testing.assert_array_equal(p.residual_loads([100, 50]), [0, 0])


class TestDunder:
    def test_equality_and_hash(self):
        a = ReallocationPolicy.two_server(3, 1)
        b = ReallocationPolicy.two_server(3, 1)
        c = ReallocationPolicy.two_server(3, 2)
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_repr_two_server(self):
        assert "L12=3" in repr(ReallocationPolicy.two_server(3, 1))

    def test_repr_multi(self):
        r = repr(ReallocationPolicy.from_transfers(3, [Transfer(0, 2, 4)]))
        assert "n=3" in r
