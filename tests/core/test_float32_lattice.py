"""Property suite for ``dtype=float32`` lattice surfaces.

The reduced-precision mode documents a hard error bound against the
float64 reference: bounded metrics (QoS / reliability) stay within
``FLOAT32_SURFACE_ATOL`` absolutely, the average execution time within
``FLOAT32_SURFACE_RTOL`` relatively.  Hypothesis drives random models,
loads and grid resolutions through both precisions and checks the bound.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Metric, TransformSolver
from repro.core.convolution import FLOAT32_SURFACE_ATOL, FLOAT32_SURFACE_RTOL
from repro.core.system import DCSModel, HomogeneousNetwork
from repro.distributions import Exponential, Pareto, Uniform, Weibull

SERVICE_FAMILIES = [
    lambda m: Exponential.from_mean(m),
    lambda m: Pareto.from_mean(m, 2.5),
    lambda m: Weibull.from_mean(m),
    lambda m: Uniform.from_mean(m),
]


def build_model(fam1: int, fam2: int, with_failures: bool) -> DCSModel:
    network = HomogeneousNetwork(
        Exponential.from_mean, latency=0.5, per_task=0.3, fn_mean=1.0
    )
    failure = None
    if with_failures:
        failure = [Exponential.from_mean(50.0), Exponential.from_mean(40.0)]
    return DCSModel(
        service=[SERVICE_FAMILIES[fam1](2.0), SERVICE_FAMILIES[fam2](1.0)],
        network=network,
        failure=failure,
    )


def surfaces(model, metric, loads, dt, deadline=None):
    solver = TransformSolver.for_workload(model, loads, dt=dt, cache=None)
    l12s = list(range(0, loads[0] + 1, 2))
    l21s = list(range(0, loads[1] + 1, 2))
    f64 = solver.evaluate_lattice(metric, loads, l12s, l21s, deadline=deadline)
    f32 = solver.evaluate_lattice(
        metric, loads, l12s, l21s, deadline=deadline, dtype=np.float32
    )
    return f64, f32


@given(
    fam1=st.integers(0, len(SERVICE_FAMILIES) - 1),
    fam2=st.integers(0, len(SERVICE_FAMILIES) - 1),
    m1=st.integers(4, 9),
    m2=st.integers(3, 7),
    dt=st.sampled_from([0.2, 0.1, 0.05]),
    metric=st.sampled_from([Metric.RELIABILITY, Metric.QOS]),
)
@settings(max_examples=12, deadline=None)
def test_bounded_metrics_within_documented_atol(fam1, fam2, m1, m2, dt, metric):
    model = build_model(fam1, fam2, with_failures=True)
    deadline = 25.0 if metric is Metric.QOS else None
    f64, f32 = surfaces(model, metric, [m1, m2], dt, deadline)
    assert f32.dtype == np.float32
    assert np.all(f32 >= 0.0) and np.all(f32 <= 1.0)
    assert np.max(np.abs(f64 - f32.astype(np.float64))) <= FLOAT32_SURFACE_ATOL


@given(
    fam1=st.integers(0, len(SERVICE_FAMILIES) - 1),
    fam2=st.integers(0, len(SERVICE_FAMILIES) - 1),
    m1=st.integers(4, 9),
    m2=st.integers(3, 7),
    dt=st.sampled_from([0.2, 0.1, 0.05]),
)
@settings(max_examples=8, deadline=None)
def test_avg_time_within_documented_rtol(fam1, fam2, m1, m2, dt):
    model = build_model(fam1, fam2, with_failures=False)
    f64, f32 = surfaces(model, Metric.AVG_EXECUTION_TIME, [m1, m2], dt)
    assert f32.dtype == np.float32
    rel = np.max(np.abs(f64 - f32.astype(np.float64)) / np.maximum(np.abs(f64), 1.0))
    assert rel <= FLOAT32_SURFACE_RTOL


_INTERLEAVE_SOLVER = None


def _interleave_solver():
    """One solver reused across hypothesis examples, so the process-wide
    FFT workspace accumulates state from *every* prior interleaving."""
    global _INTERLEAVE_SOLVER
    if _INTERLEAVE_SOLVER is None:
        model = build_model(0, 1, with_failures=True)
        _INTERLEAVE_SOLVER = TransformSolver.for_workload(
            model, [5, 4], dt=0.2, cache=None
        )
    return _INTERLEAVE_SOLVER


@given(order=st.lists(st.booleans(), min_size=2, max_size=6))
@settings(max_examples=10, deadline=None)
def test_interleaved_precisions_never_corrupt_each_other(order):
    """Interleaved float32/float64 lattice calls share one process-wide
    workspace (per canonical length); each precision's surface must be
    bit-identical no matter which dtype ran before it.  Regression for
    the arena zero-pad/fill update racing outside the workspace lock."""
    solver = _interleave_solver()
    args = (Metric.RELIABILITY, [5, 4], [0, 2, 4], [0, 2])
    base = {
        False: solver.evaluate_lattice(*args),
        True: solver.evaluate_lattice(*args, dtype=np.float32),
    }
    for use32 in order:
        got = solver.evaluate_lattice(
            *args, dtype=np.float32 if use32 else np.float64
        )
        assert got.dtype == (np.float32 if use32 else np.float64)
        np.testing.assert_array_equal(got, base[use32])


class TestDtypeContract:
    def test_float64_is_the_default_and_unchanged(self):
        model = build_model(0, 1, with_failures=True)
        solver = TransformSolver.for_workload(model, [5, 4], dt=0.1, cache=None)
        base = solver.evaluate_lattice(Metric.RELIABILITY, [5, 4], [0, 2], [0, 2])
        explicit = solver.evaluate_lattice(
            Metric.RELIABILITY, [5, 4], [0, 2], [0, 2], dtype=np.float64
        )
        assert base.dtype == np.float64
        np.testing.assert_array_equal(base, explicit)

    def test_dtype_is_part_of_the_lattice_cache_key(self):
        model = build_model(0, 0, with_failures=True)
        solver = TransformSolver.for_workload(model, [5, 4], dt=0.1)
        f64 = solver.evaluate_lattice(Metric.RELIABILITY, [5, 4], [0, 2], [0, 2])
        f32 = solver.evaluate_lattice(
            Metric.RELIABILITY, [5, 4], [0, 2], [0, 2], dtype=np.float32
        )
        # a cached float64 surface must not be served for a float32 request
        assert f64.dtype == np.float64 and f32.dtype == np.float32

    def test_unsupported_dtype_rejected(self):
        model = build_model(0, 0, with_failures=True)
        solver = TransformSolver.for_workload(model, [5, 4], dt=0.1, cache=None)
        with pytest.raises(ValueError, match="float64 or float32"):
            solver.evaluate_lattice(
                Metric.RELIABILITY, [5, 4], [0, 2], [0, 2], dtype=np.int32
            )

    def test_empty_lattice_respects_dtype(self):
        model = build_model(0, 0, with_failures=True)
        solver = TransformSolver.for_workload(model, [5, 4], dt=0.1, cache=None)
        out = solver.evaluate_lattice(
            Metric.RELIABILITY, [5, 4], [], [], dtype=np.float32
        )
        assert out.shape == (0, 0) and out.dtype == np.float32
