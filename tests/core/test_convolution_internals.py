"""Internals of the transform solver: assignments, exact2 symmetry, helpers."""

import numpy as np
import pytest

from repro.core import DCSModel, Metric, ReallocationPolicy, TransformSolver
from repro.core.convolution import _conv_truncate
from repro.core.policy import Transfer
from repro.distributions import Exponential

from ..conftest import exp_network, small_exp_model


class TestAssignments:
    def test_assignment_split(self):
        solver = TransformSolver.for_workload(small_exp_model(), [10, 5], dt=0.05)
        policy = ReallocationPolicy.two_server(4, 2)
        a0, a1 = solver.assignments([10, 5], policy)
        assert a0.residual == 6 and a1.residual == 3
        assert a0.incoming == (Transfer(1, 0, 2),)
        assert a1.incoming == (Transfer(0, 1, 4),)
        assert a0.receives_anything and a1.receives_anything

    def test_idle_server_receives_nothing(self):
        solver = TransformSolver.for_workload(small_exp_model(), [10, 0], dt=0.05)
        _, a1 = solver.assignments([10, 0], ReallocationPolicy.none(2))
        assert not a1.receives_anything

    def test_workload_mass_of_empty_system_is_delta(self):
        solver = TransformSolver.for_workload(small_exp_model(), [10, 5], dt=0.05)
        mass = solver.workload_time_mass([0, 0], ReallocationPolicy.none(2))
        assert mass.mass[0] == pytest.approx(1.0)


class TestExact2Symmetry:
    def test_batch_label_order_irrelevant(self):
        """Swapping which sender is 'first' in the policy changes nothing."""
        net = exp_network()
        model = DCSModel(
            service=[Exponential(1.0), Exponential(0.8), Exponential(2.0)],
            network=net,
        )
        loads = [8, 6, 0]
        p_a = ReallocationPolicy.from_transfers(
            3, [Transfer(0, 2, 3), Transfer(1, 2, 2)]
        )
        p_b = ReallocationPolicy.from_transfers(
            3, [Transfer(1, 2, 2), Transfer(0, 2, 3)]
        )
        solver = TransformSolver.for_workload(model, loads, dt=0.05, batch_mode="exact2")
        va = solver.average_execution_time(loads, p_a)
        vb = solver.average_execution_time(loads, p_b)
        assert va == pytest.approx(vb, rel=1e-12)

    def test_equal_size_batches_match_mc(self, rng):
        from repro.simulation import estimate_metric

        net = exp_network()
        model = DCSModel(
            service=[Exponential(1.0), Exponential(1.0), Exponential(1.5)],
            network=net,
        )
        loads = [6, 6, 1]
        policy = ReallocationPolicy.from_transfers(
            3, [Transfer(0, 2, 3), Transfer(1, 2, 3)]
        )
        solver = TransformSolver.for_workload(model, loads, dt=0.05, batch_mode="exact2")
        exact = solver.average_execution_time(loads, policy)
        mc = estimate_metric(
            Metric.AVG_EXECUTION_TIME, model, loads, policy, 6000, rng
        )
        assert abs(exact - mc.value) < 3 * mc.half_width + 0.05


class TestConvTruncate:
    def test_matches_full_convolution_prefix(self):
        a = np.array([0.5, 0.5, 0.0, 0.0])
        b = np.array([0.25, 0.75, 0.0, 0.0])
        out = _conv_truncate(a, b, 4)
        # independent reference oracle for the kernel layer itself
        expected = np.convolve(a, b)[:4]  # repro-lint: disable=RL002
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_clips_negative_fft_noise(self):
        a = np.zeros(64)
        a[0] = 1.0
        out = _conv_truncate(a, a, 64)
        assert np.all(out >= 0.0)


class TestEvaluateQosPath:
    def test_qos_with_deadline_via_evaluate(self):
        solver = TransformSolver.for_workload(small_exp_model(), [4, 2], dt=0.05)
        value = solver.evaluate(
            Metric.QOS, [4, 2], ReallocationPolicy.none(2), deadline=10.0
        )
        assert value.metric is Metric.QOS
        assert value.deadline == 10.0
        assert 0.0 <= value.value <= 1.0

    def test_negative_deadline_gives_zero(self):
        solver = TransformSolver.for_workload(small_exp_model(), [4, 2], dt=0.05)
        assert solver.qos([4, 2], ReallocationPolicy.none(2), -1.0) == 0.0
