"""Metric enums, metric values, and MC estimates."""

import math

import pytest

from repro.core import MCEstimate, Metric, MetricValue


class TestMetric:
    def test_directions(self):
        assert not Metric.AVG_EXECUTION_TIME.maximize
        assert Metric.QOS.maximize
        assert Metric.RELIABILITY.maximize

    def test_better(self):
        assert Metric.AVG_EXECUTION_TIME.better(10.0, 12.0)
        assert not Metric.AVG_EXECUTION_TIME.better(12.0, 10.0)
        assert Metric.RELIABILITY.better(0.9, 0.8)
        assert not Metric.QOS.better(0.5, 0.5)


class TestMetricValue:
    def test_probability_bounds_enforced(self):
        with pytest.raises(ValueError):
            MetricValue(Metric.RELIABILITY, 1.5)
        with pytest.raises(ValueError):
            MetricValue(Metric.QOS, -0.2, deadline=10.0)

    def test_qos_needs_deadline(self):
        with pytest.raises(ValueError):
            MetricValue(Metric.QOS, 0.5)
        v = MetricValue(Metric.QOS, 0.5, deadline=100.0)
        assert v.deadline == 100.0

    def test_time_unbounded(self):
        v = MetricValue(Metric.AVG_EXECUTION_TIME, 1234.5, method="transform")
        assert v.value == 1234.5


class TestMCEstimate:
    def test_half_width_and_contains(self):
        e = MCEstimate(0.5, 0.4, 0.6, 100)
        assert e.half_width == pytest.approx(0.1)
        assert e.contains(0.45)
        assert not e.contains(0.39)

    def test_str_formats(self):
        assert "0.5" in str(MCEstimate(0.5, 0.4, 0.6, 100))
        assert str(MCEstimate(math.inf, math.inf, math.inf, 10)) == "inf"
