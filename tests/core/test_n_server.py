"""n-server behaviour of the analysis — the paper's Remark 1.

"Non-Markovian representations for the metrics in Theorem 1 in the case of
an n-server DCS can be obtained in a straightforward manner": the faithful
solver, the Markovian recursion and the transform solver all accept any
``n``; these tests pin their mutual agreement on 3-server instances.
"""

import numpy as np
import pytest

from repro.core import (
    DCSModel,
    MarkovianSolver,
    ReallocationPolicy,
    Theorem1Solver,
    TransformSolver,
)
from repro.core.policy import Transfer
from repro.distributions import Exponential, Uniform

from ..conftest import exp_network


def three_server_exp():
    return DCSModel(
        service=[Exponential.from_mean(m) for m in (2.0, 1.0, 0.5)],
        network=exp_network(),
    )


def three_server_uniform():
    return DCSModel(
        service=[Uniform.from_mean(m) for m in (2.0, 1.0, 0.5)],
        network=exp_network(),
    )


POLICY = ReallocationPolicy.from_transfers(3, [Transfer(0, 1, 1), Transfer(0, 2, 2)])
LOADS = [4, 1, 1]


class TestThreeServerAgreement:
    def test_markovian_vs_transform_avg_time(self):
        model = three_server_exp()
        exact = MarkovianSolver(model).average_execution_time(LOADS, POLICY)
        grid = TransformSolver.for_workload(model, LOADS, dt=0.01)
        assert grid.average_execution_time(LOADS, POLICY) == pytest.approx(
            exact, rel=5e-3
        )

    def test_markovian_vs_transform_qos(self):
        model = three_server_exp()
        exact = MarkovianSolver(model).qos(LOADS, POLICY, 8.0)
        grid = TransformSolver.for_workload(model, LOADS, dt=0.01)
        assert grid.qos(LOADS, POLICY, 8.0) == pytest.approx(exact, abs=5e-3)

    def test_markovian_vs_transform_reliability(self):
        model = DCSModel(
            service=three_server_exp().service,
            network=exp_network(),
            failure=[Exponential.from_mean(m) for m in (25.0, 15.0, 10.0)],
        )
        exact = MarkovianSolver(model).reliability(LOADS, POLICY)
        grid = TransformSolver.for_workload(model, LOADS, dt=0.01)
        assert grid.reliability(LOADS, POLICY) == pytest.approx(exact, abs=5e-3)

    def test_theorem1_three_server_exponential(self):
        """The age recursion on n = 3 collapses to the Markov chain."""
        model = three_server_exp()
        exact = MarkovianSolver(model).average_execution_time(LOADS, POLICY)
        recursive = Theorem1Solver(model, ds=0.1).average_execution_time(
            LOADS, POLICY
        )
        assert recursive == pytest.approx(exact, rel=0.01)

    def test_theorem1_three_server_non_markovian(self):
        """Genuinely non-exponential 3-server instance vs transform solver."""
        model = three_server_uniform()
        loads = [2, 1, 1]
        policy = ReallocationPolicy.none(3)
        reference = TransformSolver.for_workload(
            model, loads, dt=0.002
        ).average_execution_time(loads, policy)
        recursive = Theorem1Solver(model, ds=0.1).average_execution_time(
            loads, policy
        )
        assert recursive == pytest.approx(reference, rel=0.02)

    def test_theorem1_three_server_reliability(self):
        model = DCSModel(
            service=three_server_uniform().service,
            network=exp_network(),
            failure=[Exponential.from_mean(m) for m in (25.0, 15.0, 10.0)],
        )
        loads = [2, 1, 1]
        policy = ReallocationPolicy.none(3)
        reference = TransformSolver.for_workload(model, loads, dt=0.002).reliability(
            loads, policy
        )
        recursive = Theorem1Solver(model, ds=0.1).reliability(loads, policy)
        assert recursive == pytest.approx(reference, abs=0.01)


class TestNServerStructure:
    def test_transform_handles_five_servers(self):
        from repro.workloads import five_server_scenario

        sc = five_server_scenario("shifted-exponential", with_failures=False)
        loads = [10, 5, 3, 2, 1]
        matrix = np.zeros((5, 5), dtype=int)
        matrix[0, 4] = 4
        matrix[1, 3] = 2
        policy = ReallocationPolicy(matrix)
        solver = TransformSolver.for_workload(sc.model, loads, dt=0.1)
        value = solver.average_execution_time(loads, policy)
        assert np.isfinite(value) and value > 0

    def test_markovian_reliability_multi_failure_paths(self):
        """Doomed states prune correctly with three failure clocks."""
        model = DCSModel(
            service=[Exponential(1.0)] * 3,
            network=exp_network(),
            failure=[Exponential(0.5)] * 3,
        )
        value = MarkovianSolver(model).reliability([1, 1, 1], ReallocationPolicy.none(3))
        # per server: P(Exp(1) < Exp(0.5)) = 1/(1+0.5) = 2/3; independent
        assert value == pytest.approx((2.0 / 3.0) ** 3, rel=1e-9)
