"""Theorem 1 QoS recursion vs. the uniformized Markov chain.

Exercises the deadline-capped, *non-renormalized* quadrature branch of the
faithful solver against an independent exact computation.
"""

import pytest

from repro.core import MarkovianSolver, ReallocationPolicy, Theorem1Solver

from ..conftest import small_exp_model


@pytest.mark.parametrize("deadline", [4.0, 8.0, 14.0])
def test_qos_matches_uniformization(deadline):
    model = small_exp_model()
    loads = [3, 2]
    policy = ReallocationPolicy.two_server(1, 0)
    exact = MarkovianSolver(model).qos(loads, policy, deadline)
    recursive = Theorem1Solver(model, ds=0.1).qos(loads, policy, deadline)
    assert recursive == pytest.approx(exact, abs=0.02)


def test_qos_with_failures_matches_uniformization():
    model = small_exp_model(with_failures=True)
    loads = [2, 2]
    policy = ReallocationPolicy.none(2)
    exact = MarkovianSolver(model).qos(loads, policy, 6.0)
    recursive = Theorem1Solver(model, ds=0.1).qos(loads, policy, 6.0)
    assert recursive == pytest.approx(exact, abs=0.02)


def test_qos_truncation_is_one_sided():
    """The capped quadrature can only lose completion probability, so the
    recursion must never exceed the exact value by more than fp noise."""
    model = small_exp_model()
    loads = [3, 2]
    policy = ReallocationPolicy.none(2)
    for deadline in (5.0, 10.0):
        exact = MarkovianSolver(model).qos(loads, policy, deadline)
        recursive = Theorem1Solver(model, ds=0.2).qos(loads, policy, deadline)
        assert recursive <= exact + 0.02
