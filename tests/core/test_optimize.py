"""The 2-server policy optimizer — problems (3) and (4) of the paper."""

import numpy as np
import pytest

from repro.core import (
    DCSModel,
    MarkovianSolver,
    Metric,
    ReallocationPolicy,
    TransformSolver,
    TwoServerOptimizer,
    sweep_policies,
)
from repro.distributions import Exponential

from ..conftest import exp_network, small_exp_model


@pytest.fixture(scope="module")
def solver():
    return TransformSolver.for_workload(small_exp_model(), [12, 6], dt=0.02)


@pytest.fixture(scope="module")
def markov_solver():
    return MarkovianSolver(small_exp_model())


class TestExhaustiveSearch:
    def test_optimum_beats_all_evaluated(self, solver):
        res = TwoServerOptimizer(solver).optimize(
            Metric.AVG_EXECUTION_TIME, [12, 6]
        )
        assert all(res.value <= ev.value + 1e-12 for ev in res.evaluations)

    def test_exhaustive_covers_lattice(self, solver):
        res = TwoServerOptimizer(solver).optimize(Metric.AVG_EXECUTION_TIME, [12, 6])
        assert len({(e.l12, e.l21) for e in res.evaluations}) == 13 * 7

    def test_markovian_solver_as_backend(self, markov_solver):
        res = TwoServerOptimizer(markov_solver).optimize(
            Metric.AVG_EXECUTION_TIME, [12, 6]
        )
        assert res.policy[0, 1] > 0  # offloads toward the fast server
        assert res.value > 0

    def test_coarse_then_refine_matches_exhaustive(self, solver):
        opt = TwoServerOptimizer(solver)
        full = opt.optimize(Metric.AVG_EXECUTION_TIME, [12, 6], step=1)
        coarse = opt.optimize(Metric.AVG_EXECUTION_TIME, [12, 6], step=4)
        assert coarse.value == pytest.approx(full.value, rel=1e-3)

    def test_qos_needs_deadline(self, solver):
        with pytest.raises(ValueError):
            TwoServerOptimizer(solver).optimize(Metric.QOS, [12, 6])

    def test_rejects_non_two_server(self, solver):
        with pytest.raises(ValueError):
            TwoServerOptimizer(solver).optimize(Metric.AVG_EXECUTION_TIME, [5, 5, 5])

    def test_ties_recorded(self, solver):
        res = TwoServerOptimizer(solver).optimize(
            Metric.AVG_EXECUTION_TIME, [12, 6], tie_tol=1e-4
        )
        assert (res.policy[0, 1], res.policy[1, 0]) in res.ties

    def test_evaluation_grid_export(self, solver):
        res = TwoServerOptimizer(solver).optimize(Metric.AVG_EXECUTION_TIME, [12, 6])
        grid = res.evaluation_grid(12, 6)
        assert grid.shape == (13, 7)
        assert np.isfinite(grid).all()
        assert np.nanmin(grid) == pytest.approx(res.value)


class TestOptimumStructure:
    def test_symmetric_servers_balance(self):
        """Identical servers, all load on server 1: optimum sends ~half."""
        model = DCSModel(
            service=[Exponential(1.0), Exponential(1.0)],
            network=exp_network(latency=0.01, per_task=0.01),
        )
        solver = TransformSolver.for_workload(model, [10, 0], dt=0.02)
        res = TwoServerOptimizer(solver).optimize(Metric.AVG_EXECUTION_TIME, [10, 0])
        assert 4 <= res.policy[0, 1] <= 6
        assert res.policy[1, 0] == 0

    def test_expensive_network_discourages_transfers(self):
        cheap_model = DCSModel(
            service=[Exponential(0.5), Exponential(1.0)],
            network=exp_network(latency=0.01, per_task=0.05),
        )
        dear_model = DCSModel(
            service=[Exponential(0.5), Exponential(1.0)],
            network=exp_network(latency=10.0, per_task=5.0),
        )
        cheap = TwoServerOptimizer(
            TransformSolver.for_workload(cheap_model, [10, 0], dt=0.02)
        ).optimize(Metric.AVG_EXECUTION_TIME, [10, 0])
        dear = TwoServerOptimizer(
            TransformSolver.for_workload(dear_model, [10, 0], dt=0.05)
        ).optimize(Metric.AVG_EXECUTION_TIME, [10, 0])
        assert dear.policy[0, 1] <= cheap.policy[0, 1]

    def test_reliability_prefers_reliable_server(self):
        """Fast server dies almost immediately: send nothing to it."""
        model = DCSModel(
            service=[Exponential(0.5), Exponential(2.0)],
            network=exp_network(),
            failure=[None, Exponential(2.0)],  # server 2 MTTF = 0.5 s
        )
        solver = TransformSolver.for_workload(model, [8, 0], dt=0.02)
        res = TwoServerOptimizer(solver).optimize(Metric.RELIABILITY, [8, 0])
        assert res.policy[0, 1] == 0
        assert res.value == pytest.approx(1.0, abs=1e-6)

    def test_caching_reuses_evaluations(self, solver):
        opt = TwoServerOptimizer(solver)
        opt.optimize(Metric.AVG_EXECUTION_TIME, [12, 6])
        n_cache = len(opt._cache)
        opt.optimize(Metric.AVG_EXECUTION_TIME, [12, 6])
        assert len(opt._cache) == n_cache  # second run fully cached


class TestJobsDeterminism:
    """Fanning the lattice over workers must not change the optimum."""

    def test_optimize_parallel_matches_serial(self, solver):
        serial = TwoServerOptimizer(solver).optimize(
            Metric.AVG_EXECUTION_TIME, [12, 6], jobs=1
        )
        fanned = TwoServerOptimizer(solver).optimize(
            Metric.AVG_EXECUTION_TIME, [12, 6], jobs=3
        )
        assert fanned.value == serial.value  # exact, not approx
        assert (fanned.l12, fanned.l21) == (serial.l12, serial.l21)
        assert fanned.ties == serial.ties

    def test_optimize_coarse_refine_parallel(self, solver):
        serial = TwoServerOptimizer(solver).optimize(
            Metric.AVG_EXECUTION_TIME, [12, 6], step=4, jobs=1
        )
        fanned = TwoServerOptimizer(solver).optimize(
            Metric.AVG_EXECUTION_TIME, [12, 6], step=4, jobs=2
        )
        assert fanned.value == serial.value
        assert (fanned.l12, fanned.l21) == (serial.l12, serial.l21)

    def test_sweep_parallel_matches_serial(self, solver):
        grid_args = (solver, Metric.AVG_EXECUTION_TIME, [12, 6], [0, 4, 8], [0, 3])
        serial = sweep_policies(*grid_args, jobs=1)
        fanned = sweep_policies(*grid_args, jobs=2)
        np.testing.assert_array_equal(serial, fanned)


class TestSweep:
    def test_sweep_shape_and_values(self, solver):
        values = sweep_policies(
            solver, Metric.AVG_EXECUTION_TIME, [12, 6], [0, 4, 8], [0, 3]
        )
        assert values.shape == (3, 2)
        assert np.isfinite(values).all()

    def test_sweep_rejects_non_two_server(self, solver):
        with pytest.raises(ValueError):
            sweep_policies(solver, Metric.AVG_EXECUTION_TIME, [1, 2, 3], [0], [0])

    def test_sweep_matches_direct_evaluation(self, solver):
        values = sweep_policies(solver, Metric.AVG_EXECUTION_TIME, [12, 6], [4], [2])
        direct = solver.average_execution_time(
            [12, 6], ReallocationPolicy.two_server(4, 2)
        )
        assert values[0, 0] == pytest.approx(direct)
