"""MC policy search and the allocation-to-flow conversion."""

import numpy as np
import pytest

from repro.core import DCSModel, MCPolicySearch, Metric
from repro.core.mc_search import allocation_to_policy
from repro.distributions import Exponential

from ..conftest import exp_network


class TestAllocationToPolicy:
    def test_identity_allocation(self):
        p = allocation_to_policy([5, 3], [5, 3])
        assert p.matrix.sum() == 0

    def test_simple_flow(self):
        p = allocation_to_policy([10, 0], [4, 6])
        assert p[0, 1] == 6

    def test_multi_server_flows_conserve(self):
        loads = [20, 5, 0, 3]
        target = [7, 9, 8, 4]
        p = allocation_to_policy(loads, target)
        p.validate_against(loads)
        final = p.residual_loads(loads) + np.array(
            [p.inflow(j) for j in range(4)]
        )
        np.testing.assert_array_equal(final, target)

    def test_rejects_mismatched_totals(self):
        with pytest.raises(ValueError):
            allocation_to_policy([5, 5], [5, 6])

    def test_rejects_negative_targets(self):
        with pytest.raises(ValueError):
            allocation_to_policy([5, 5], [-1, 11])

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            allocation_to_policy([5, 5], [10])


class TestMCPolicySearch:
    def make_model(self):
        return DCSModel(
            service=[Exponential.from_mean(2.0), Exponential.from_mean(1.0)],
            network=exp_network(latency=0.05, per_task=0.05),
        )

    def test_finds_better_than_initial(self, rng):
        model = self.make_model()
        search = MCPolicySearch(model, Metric.AVG_EXECUTION_TIME, n_reps=60)
        res = search.search([16, 0], rng, n_random=6, step_sizes=(4, 2))
        # the winner moves a meaningful share to the fast idle server
        assert res.allocation[1] >= 4
        assert res.n_evaluations == len(res.history)
        assert res.value < 32.0  # doing nothing is 16 * 2 = 32 s

    def test_result_policy_realizes_allocation(self, rng):
        model = self.make_model()
        search = MCPolicySearch(model, Metric.AVG_EXECUTION_TIME, n_reps=40)
        res = search.search([10, 2], rng, n_random=4, step_sizes=(2,))
        res.policy.validate_against([10, 2])
        final = res.policy.residual_loads([10, 2]) + np.array(
            [res.policy.inflow(j) for j in range(2)]
        )
        np.testing.assert_array_equal(final, np.asarray(res.allocation))

    def test_reliability_metric(self, rng):
        model = DCSModel(
            service=[Exponential.from_mean(2.0), Exponential.from_mean(1.0)],
            network=exp_network(latency=0.05, per_task=0.05),
            failure=[Exponential.from_mean(50.0), Exponential.from_mean(25.0)],
        )
        search = MCPolicySearch(model, Metric.RELIABILITY, n_reps=60)
        res = search.search([8, 2], rng, n_random=4, step_sizes=(2,))
        assert 0.0 <= res.value <= 1.0

    def test_qos_requires_deadline(self):
        with pytest.raises(ValueError):
            MCPolicySearch(self.make_model(), Metric.QOS)

    def test_custom_weights_bias_proposals(self, rng):
        model = self.make_model()
        search = MCPolicySearch(
            model, Metric.AVG_EXECUTION_TIME, n_reps=10, weights=[0.0001, 1.0]
        )
        allocs = [search._random_allocation(20, rng) for _ in range(20)]
        shares = np.mean([a[1] / 20 for a in allocs])
        assert shares > 0.8
