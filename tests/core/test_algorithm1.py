"""Algorithm 1 — the scalable multi-server DTR heuristic (paper Sec. II-E)."""

import numpy as np
import pytest

from repro.core import Algorithm1, DCSModel, Metric, TransformSolver, TwoServerOptimizer
from repro.core.algorithm1 import _multires_argbest, criterion_vector, seed_policy
from repro.distributions import Exponential

from ..conftest import exp_network


def three_server_model(with_failures=False):
    failure = None
    if with_failures:
        failure = [Exponential.from_mean(m) for m in (100.0, 50.0, 25.0)]
    return DCSModel(
        service=[Exponential.from_mean(m) for m in (3.0, 2.0, 1.0)],
        network=exp_network(),
        failure=failure,
    )


class TestCriterionVector:
    def test_speed(self):
        lam = criterion_vector(three_server_model(), "speed")
        np.testing.assert_allclose(lam, [1 / 3, 1 / 2, 1.0])

    def test_reliability(self):
        lam = criterion_vector(three_server_model(with_failures=True), "reliability")
        np.testing.assert_allclose(lam, [100.0, 50.0, 25.0])

    def test_reliability_caps_reliable_servers(self):
        model = DCSModel(
            service=[Exponential(1.0)] * 2,
            network=exp_network(),
            failure=[None, Exponential.from_mean(10.0)],
        )
        lam = criterion_vector(model, "reliability")
        assert lam[0] == pytest.approx(100.0)  # capped at 10x max finite MTTF

    def test_unknown_criterion(self):
        with pytest.raises(ValueError):
            criterion_vector(three_server_model(), "bogus")


class TestSeedPolicy:
    def test_balances_toward_fast_servers(self):
        lam = np.array([1.0, 1.0, 2.0])
        seed = seed_policy([40, 0, 0], lam)
        # fair shares: 10, 10, 20 -> server 0 has 30 excess
        assert seed[0, 1] + seed[0, 2] <= 30
        assert seed[0, 2] >= seed[0, 1]  # bigger deficit gets more
        assert seed[1].sum() == 0 and seed[2].sum() == 0

    def test_balanced_load_needs_no_moves(self):
        lam = np.array([1.0, 1.0])
        seed = seed_policy([10, 10], lam)
        assert seed.sum() == 0

    def test_never_oversends(self):
        lam = np.array([5.0, 1.0, 1.0])
        loads = [3, 30, 7]
        seed = seed_policy(loads, lam)
        assert (seed.sum(axis=1) <= np.asarray(loads)).all()

    def test_rejects_bad_lambda(self):
        with pytest.raises(ValueError):
            seed_policy([1, 2], [1.0])
        with pytest.raises(ValueError):
            seed_policy([1, 2], [1.0, -1.0])


class TestMultiresSearch:
    def test_finds_unimodal_minimum(self):
        calls = []

        def f(x):
            calls.append(x)
            return (x - 37) ** 2

        best = _multires_argbest(f, 0, 100, lambda a, b: a < b)
        assert best == 37
        assert len(set(calls)) < 50  # far fewer evaluations than exhaustive

    def test_small_range_exhaustive(self):
        best = _multires_argbest(lambda x: -x, 0, 5, lambda a, b: a < b)
        assert best == 5

    def test_single_point(self):
        assert _multires_argbest(lambda x: x, 3, 3, lambda a, b: a < b) == 3


class TestAlgorithm1:
    def test_two_server_matches_dedicated_optimizer(self):
        """With n=2 and L21=0 flows, Algorithm 1 reduces to problem (3)."""
        model = DCSModel(
            service=[Exponential.from_mean(2.0), Exponential.from_mean(1.0)],
            network=exp_network(),
        )
        loads = [20, 4]
        algo = Algorithm1(model, Metric.AVG_EXECUTION_TIME, dt=0.02)
        res = algo.run(loads)
        solver = TransformSolver.for_workload(model, [24, 24], dt=0.02)
        direct = TwoServerOptimizer(solver).optimize(
            Metric.AVG_EXECUTION_TIME, loads, step=1
        )
        # same transfer up to the search tolerance of the 1-D scan
        assert abs(res.policy[0, 1] - direct.policy[0, 1]) <= 2

    def test_converges_and_reports_history(self):
        model = three_server_model()
        algo = Algorithm1(model, Metric.AVG_EXECUTION_TIME, max_iterations=8, dt=0.05)
        res = algo.run([30, 5, 2])
        assert res.converged
        assert res.iterations <= 8
        assert len(res.history) == res.iterations + 1
        np.testing.assert_array_equal(res.history[-1], res.policy.matrix)

    def test_policy_is_feasible(self):
        model = three_server_model()
        loads = [30, 5, 2]
        res = Algorithm1(model, Metric.AVG_EXECUTION_TIME, dt=0.05).run(loads)
        res.policy.validate_against(loads)

    def test_idle_servers_receive_work(self):
        model = three_server_model()
        res = Algorithm1(model, Metric.AVG_EXECUTION_TIME, dt=0.05).run([30, 0, 0])
        assert res.policy.inflow(1) > 0
        assert res.policy.inflow(2) > 0

    def test_balanced_system_stays_put(self):
        model = DCSModel(
            service=[Exponential(1.0)] * 3,
            network=exp_network(),
        )
        res = Algorithm1(model, Metric.AVG_EXECUTION_TIME, dt=0.05).run([10, 10, 10])
        assert res.policy.matrix.sum() == 0

    def test_estimates_shape_validation(self):
        model = three_server_model()
        algo = Algorithm1(model, Metric.AVG_EXECUTION_TIME, dt=0.05)
        with pytest.raises(ValueError):
            algo.run([10, 10, 10], estimates=np.zeros((2, 2)))
        with pytest.raises(ValueError):
            algo.run([10, 10])

    def test_inflated_estimates_shrink_transfers(self):
        """If everyone believes the fast server is loaded, they send less."""
        model = three_server_model()
        loads = [30, 5, 2]
        honest = Algorithm1(model, Metric.AVG_EXECUTION_TIME, dt=0.05).run(loads)
        lies = np.tile(np.asarray(loads), (3, 1))
        lies[:, 2] = 60  # everyone thinks server 2 is swamped
        np.fill_diagonal(lies, loads)
        deceived = Algorithm1(model, Metric.AVG_EXECUTION_TIME, dt=0.05).run(
            loads, estimates=lies
        )
        assert deceived.policy.inflow(2) < honest.policy.inflow(2)

    def test_qos_requires_deadline(self):
        with pytest.raises(ValueError):
            Algorithm1(three_server_model(), Metric.QOS)

    def test_reliability_metric_runs(self):
        model = three_server_model(with_failures=True)
        res = Algorithm1(
            model, Metric.RELIABILITY, max_iterations=4, dt=0.05
        ).run([30, 5, 2], criterion="reliability")
        res.policy.validate_against([30, 5, 2])

    def test_exhaustive_2d_pair_search(self):
        model = three_server_model()
        res = Algorithm1(
            model,
            Metric.AVG_EXECUTION_TIME,
            dt=0.05,
            pair_search="exhaustive-2d",
            max_iterations=2,
        ).run([12, 3, 1])
        res.policy.validate_against([12, 3, 1])

    def test_unknown_pair_search_rejected(self):
        with pytest.raises(ValueError):
            Algorithm1(three_server_model(), Metric.AVG_EXECUTION_TIME, pair_search="x")
