"""DCSModel and the network models."""

import numpy as np
import pytest

from repro.core import (
    DCSModel,
    HeterogeneousNetwork,
    HomogeneousNetwork,
    ZeroDelayNetwork,
)
from repro.distributions import Exponential, ShiftedGamma, Uniform


def make_model(n=3, with_failures=False):
    net = HomogeneousNetwork(
        Exponential.from_mean, latency=0.5, per_task=1.0, fn_mean=0.2
    )
    failure = [Exponential.from_mean(100.0)] * n if with_failures else None
    return DCSModel(
        service=[Exponential.from_mean(float(k + 1)) for k in range(n)],
        network=net,
        failure=failure,
    )


class TestHomogeneousNetwork:
    def test_group_transfer_mean_scales_with_size(self):
        net = HomogeneousNetwork(Exponential.from_mean, 0.5, 1.0, 0.2)
        assert net.group_transfer(0, 1, 1).mean() == pytest.approx(1.5)
        assert net.group_transfer(0, 1, 10).mean() == pytest.approx(10.5)
        assert net.mean_group_transfer(10) == pytest.approx(10.5)

    def test_fn_mean(self):
        net = HomogeneousNetwork(Exponential.from_mean, 0.5, 1.0, 0.2)
        assert net.failure_notice(1, 0).mean() == pytest.approx(0.2)

    def test_rejects_nonpositive_size(self):
        net = HomogeneousNetwork(Exponential.from_mean, 0.5, 1.0, 0.2)
        with pytest.raises(ValueError):
            net.group_transfer(0, 1, 0)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            HomogeneousNetwork(Exponential.from_mean, -1.0, 1.0, 0.2)
        with pytest.raises(ValueError):
            HomogeneousNetwork(Exponential.from_mean, 0.0, 1.0, 0.0)

    def test_family_factory_used(self):
        net = HomogeneousNetwork(Uniform.from_mean, 0.0, 1.0, 0.2)
        assert isinstance(net.group_transfer(0, 1, 3), Uniform)


class TestHeterogeneousNetwork:
    def test_per_link_means(self):
        lat = [[0.0, 0.3], [0.1, 0.0]]
        per = [[0.0, 1.2], [0.8, 0.0]]
        fn = [[0.0, 0.3], [0.1, 0.0]]
        net = HeterogeneousNetwork(
            lambda m: ShiftedGamma.from_mean(m, shape=2.0), lat, per, fn
        )
        assert net.group_transfer(0, 1, 10).mean() == pytest.approx(12.3)
        assert net.group_transfer(1, 0, 10).mean() == pytest.approx(8.1)

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            HeterogeneousNetwork(
                Exponential.from_mean, [[0.0, 0.3]], [[0.0]], [[0.0]]
            )

    def test_rejects_negative_entries(self):
        with pytest.raises(ValueError):
            HeterogeneousNetwork(
                Exponential.from_mean,
                [[0.0, -0.3], [0.1, 0.0]],
                [[0.0, 1.0], [1.0, 0.0]],
                [[0.0, 0.1], [0.1, 0.0]],
            )


class TestZeroDelayNetwork:
    def test_transfers_are_instant(self):
        net = ZeroDelayNetwork()
        assert net.group_transfer(0, 1, 100).mean() == 0.0
        assert net.failure_notice(0, 1).mean() == 0.0


class TestDCSModel:
    def test_basic_properties(self):
        m = make_model(3)
        assert m.n == 3
        assert m.reliable
        assert m.failure_of(0) is None

    def test_failure_accessor(self):
        m = make_model(2, with_failures=True)
        assert not m.reliable
        assert m.failure_of(1).mean() == pytest.approx(100.0)

    def test_mixed_reliability(self):
        net = ZeroDelayNetwork()
        m = DCSModel(
            service=[Exponential(1.0), Exponential(1.0)],
            network=net,
            failure=[None, Exponential.from_mean(10.0)],
        )
        assert not m.reliable
        assert m.failure_of(0) is None

    def test_all_none_failures_is_reliable(self):
        m = DCSModel(
            service=[Exponential(1.0)],
            network=ZeroDelayNetwork(),
            failure=[None],
        )
        assert m.reliable

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DCSModel(service=[], network=ZeroDelayNetwork())

    def test_rejects_failure_length_mismatch(self):
        with pytest.raises(ValueError):
            DCSModel(
                service=[Exponential(1.0)],
                network=ZeroDelayNetwork(),
                failure=[None, None],
            )


class TestPairwise:
    def test_pairwise_picks_servers(self):
        m = make_model(4, with_failures=True)
        pair = m.pairwise(2, 0)
        assert pair.n == 2
        assert pair.service[0].mean() == pytest.approx(3.0)
        assert pair.service[1].mean() == pytest.approx(1.0)
        assert pair.failure[0].mean() == pytest.approx(100.0)

    def test_pairwise_network_reindexes(self):
        lat = np.zeros((3, 3))
        per = np.arange(9, dtype=float).reshape(3, 3)
        fn = np.full((3, 3), 0.1)
        net = HeterogeneousNetwork(Exponential.from_mean, lat, per, fn)
        m = DCSModel(service=[Exponential(1.0)] * 3, network=net)
        pair = m.pairwise(2, 1)
        # link 0 -> 1 of the pair is link 2 -> 1 of the full system
        assert pair.network.group_transfer(0, 1, 1).mean() == pytest.approx(7.0)

    def test_pairwise_rejects_same_server(self):
        with pytest.raises(ValueError):
            make_model(3).pairwise(1, 1)
