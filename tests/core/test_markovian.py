"""The Markovian recursion solver of refs [2],[7] — closed-form checks."""

import math

import numpy as np
import pytest

from repro.core import (
    DCSModel,
    MarkovianSolver,
    ReallocationPolicy,
    ZeroDelayNetwork,
    markovian_approximation,
)
from repro.distributions import Exponential, Uniform

from ..conftest import exp_network, small_exp_model


class TestValidation:
    def test_rejects_non_exponential_service(self):
        model = DCSModel(service=[Uniform(0.0, 2.0)], network=ZeroDelayNetwork())
        with pytest.raises(TypeError):
            MarkovianSolver(model)

    def test_rejects_non_exponential_failure(self):
        model = DCSModel(
            service=[Exponential(1.0)],
            network=ZeroDelayNetwork(),
            failure=[Uniform(0.0, 10.0)],
        )
        with pytest.raises(TypeError):
            MarkovianSolver(model)

    def test_rejects_non_exponential_transfer(self):
        from repro.core import HomogeneousNetwork

        net = HomogeneousNetwork(lambda m: Uniform.from_mean(m), 0.1, 1.0, 0.1)
        model = DCSModel(service=[Exponential(1.0), Exponential(1.0)], network=net)
        solver = MarkovianSolver(model)
        with pytest.raises(TypeError):
            solver.average_execution_time([1, 1], ReallocationPolicy.two_server(1, 0))

    def test_avg_time_requires_reliable(self):
        solver = MarkovianSolver(small_exp_model(with_failures=True))
        with pytest.raises(ValueError):
            solver.average_execution_time([1, 1], ReallocationPolicy.none(2))


class TestSingleServerClosedForms:
    """One server, m tasks: T is Erlang(m, mu) — everything is exact."""

    def make(self, with_failure=False):
        failure = [Exponential(0.1)] if with_failure else None
        return DCSModel(
            service=[Exponential(2.0)], network=ZeroDelayNetwork(), failure=failure
        )

    def test_mean_is_erlang_mean(self):
        solver = MarkovianSolver(self.make())
        value = solver.average_execution_time([5], ReallocationPolicy.none(1))
        assert value == pytest.approx(5 / 2.0, rel=1e-12)

    def test_reliability_closed_form(self):
        """P(Erlang(m, mu) < Exp(lam)) = (mu / (mu + lam))^m."""
        solver = MarkovianSolver(self.make(with_failure=True))
        value = solver.reliability([4], ReallocationPolicy.none(1))
        assert value == pytest.approx((2.0 / 2.1) ** 4, rel=1e-12)

    def test_qos_is_erlang_cdf(self):
        from scipy import stats

        solver = MarkovianSolver(self.make())
        deadline = 3.0
        value = solver.qos([5], ReallocationPolicy.none(1), deadline)
        expected = float(stats.gamma.cdf(deadline, 5, scale=0.5))
        assert value == pytest.approx(expected, abs=1e-6)

    def test_empty_workload(self):
        solver = MarkovianSolver(self.make())
        assert solver.average_execution_time([0], ReallocationPolicy.none(1)) == 0.0
        assert solver.qos([0], ReallocationPolicy.none(1), 1.0) == 1.0


class TestTwoServerStructure:
    def test_independent_servers_mean_of_max(self):
        """No transfers: T = max(Erlang(m1), Erlang(m2)); check vs MC."""
        rng = np.random.default_rng(0)
        solver = MarkovianSolver(small_exp_model())
        value = solver.average_execution_time([3, 4], ReallocationPolicy.none(2))
        t1 = rng.gamma(3, 2.0, 200_000)
        t2 = rng.gamma(4, 1.0, 200_000)
        assert value == pytest.approx(float(np.maximum(t1, t2).mean()), rel=0.01)

    def test_reliability_factorizes(self):
        """With no transfers the reliability is a product of per-server terms."""
        solver = MarkovianSolver(small_exp_model(with_failures=True))
        value = solver.reliability([3, 2], ReallocationPolicy.none(2))
        # per-server: (mu/(mu+lam))^m
        r1 = (0.5 / (0.5 + 1 / 20.0)) ** 3
        r2 = (1.0 / (1.0 + 1 / 10.0)) ** 2
        assert value == pytest.approx(r1 * r2, rel=1e-9)

    def test_transfer_changes_value(self):
        solver = MarkovianSolver(small_exp_model())
        keep = solver.average_execution_time([6, 0], ReallocationPolicy.none(2))
        move = solver.average_execution_time([6, 0], ReallocationPolicy.two_server(3, 0))
        assert move < keep  # offloading a 2 s/task queue to a 1 s/task server

    def test_doomed_transfer_kills_reliability(self):
        """All tasks shipped to a guaranteed-dead server: R must drop."""
        model = DCSModel(
            service=[Exponential(0.5), Exponential(1.0)],
            network=exp_network(),
            failure=[None, Exponential(1.0)],  # fast server dies in ~1 s
        )
        solver = MarkovianSolver(model)
        keep = solver.reliability([4, 0], ReallocationPolicy.none(2))
        ship = solver.reliability([4, 0], ReallocationPolicy.two_server(4, 0))
        assert keep == pytest.approx(1.0)
        assert ship < 0.5

    def test_qos_increases_with_deadline(self):
        solver = MarkovianSolver(small_exp_model())
        pol = ReallocationPolicy.two_server(2, 1)
        values = [solver.qos([5, 3], pol, t) for t in (2.0, 5.0, 10.0, 30.0)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_qos_approaches_reliability_limit(self):
        solver = MarkovianSolver(small_exp_model(with_failures=True))
        pol = ReallocationPolicy.two_server(2, 1)
        qos_late = solver.qos([3, 2], pol, 300.0)
        rel = solver.reliability([3, 2], pol)
        assert qos_late == pytest.approx(rel, abs=1e-3)

    def test_qos_zero_deadline(self):
        solver = MarkovianSolver(small_exp_model())
        assert solver.qos([5, 3], ReallocationPolicy.none(2), 0.0) == 0.0


class TestMarkovianApproximation:
    def test_replaces_means(self):
        from repro.workloads import two_server_scenario

        sc = two_server_scenario("pareto1", delay="low")
        approx = markovian_approximation(sc.model)
        for orig, new in zip(sc.model.service, approx.service):
            assert isinstance(new, Exponential)
            assert new.mean() == pytest.approx(orig.mean())
        z_orig = sc.model.network.group_transfer(0, 1, 10)
        z_new = approx.network.group_transfer(0, 1, 10)
        assert isinstance(z_new, Exponential)
        assert z_new.mean() == pytest.approx(z_orig.mean())

    def test_keeps_reliable_servers_reliable(self):
        from repro.workloads import two_server_scenario

        sc = two_server_scenario("uniform", delay="low", with_failures=False)
        approx = markovian_approximation(sc.model)
        assert approx.reliable

    def test_three_server_recursion_works(self):
        net = exp_network()
        model = DCSModel(
            service=[Exponential(1.0), Exponential(2.0), Exponential(0.5)],
            network=net,
        )
        solver = MarkovianSolver(model)
        policy = ReallocationPolicy.from_transfers(
            3, [__import__("repro.core", fromlist=["Transfer"]).Transfer(0, 1, 2)]
        )
        value = solver.average_execution_time([4, 1, 2], policy)
        assert value > 0 and math.isfinite(value)
