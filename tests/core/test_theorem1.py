"""Theorem1Solver plumbing: guards, state transitions, degenerate cases."""

import pytest

from repro.core import DCSModel, ReallocationPolicy, Theorem1Solver, ZeroDelayNetwork
from repro.core.theorem1 import _ClockInfo
from repro.distributions import Deterministic, Exponential, Uniform

from ..conftest import exp_network, small_exp_model


class TestGuards:
    def test_rejects_bad_ds(self):
        with pytest.raises(ValueError):
            Theorem1Solver(small_exp_model(), ds=0.0)

    def test_rejects_atomic_clocks(self):
        with pytest.raises(TypeError):
            _ClockInfo("service", 0, Deterministic(1.0), 0)

    def test_atomic_service_rejected_at_solve(self):
        model = DCSModel(service=[Deterministic(1.0)], network=ZeroDelayNetwork())
        solver = Theorem1Solver(model, ds=0.1)
        with pytest.raises(TypeError):
            solver.average_execution_time([2], ReallocationPolicy.none(1))

    def test_avg_time_requires_reliable(self):
        solver = Theorem1Solver(small_exp_model(with_failures=True), ds=0.1)
        with pytest.raises(ValueError):
            solver.average_execution_time([1, 1], ReallocationPolicy.none(2))

    def test_state_budget_enforced(self):
        model = DCSModel(
            service=[Uniform.from_mean(2.0), Uniform.from_mean(1.0)],
            network=exp_network(),
        )
        solver = Theorem1Solver(model, ds=0.05, max_states=5)
        with pytest.raises(RuntimeError, match="max_states"):
            solver.average_execution_time([4, 4], ReallocationPolicy.none(2))


class TestDegenerateCases:
    def test_empty_workload(self):
        solver = Theorem1Solver(small_exp_model(), ds=0.1)
        assert solver.average_execution_time([0, 0], ReallocationPolicy.none(2)) == 0.0
        assert solver.reliability([0, 0], ReallocationPolicy.none(2)) == 1.0
        assert solver.qos([0, 0], ReallocationPolicy.none(2), 1.0) == 1.0

    def test_qos_zero_deadline(self):
        solver = Theorem1Solver(small_exp_model(), ds=0.1)
        assert solver.qos([1, 1], ReallocationPolicy.none(2), 0.0) == 0.0

    def test_single_task_single_server_is_service_mean(self):
        model = DCSModel(service=[Uniform.from_mean(2.0)], network=ZeroDelayNetwork())
        solver = Theorem1Solver(model, ds=0.01)
        value = solver.average_execution_time([1], ReallocationPolicy.none(1))
        assert value == pytest.approx(2.0, rel=0.01)

    def test_two_tasks_single_server_sums_means(self):
        model = DCSModel(service=[Uniform.from_mean(1.5)], network=ZeroDelayNetwork())
        solver = Theorem1Solver(model, ds=0.01)
        value = solver.average_execution_time([2], ReallocationPolicy.none(1))
        assert value == pytest.approx(3.0, rel=0.01)

    def test_certain_failure_before_service(self):
        """Failure at ~0.1, service needs >= 1: reliability ~ 0."""
        model = DCSModel(
            service=[Uniform(1.0, 2.0)],
            network=ZeroDelayNetwork(),
            failure=[Exponential(50.0)],  # mean 0.02
        )
        solver = Theorem1Solver(model, ds=0.005)
        value = solver.reliability([1], ReallocationPolicy.none(1))
        assert value < 0.01

    def test_quasi_reliable_server(self):
        model = DCSModel(
            service=[Uniform(0.5, 1.0)],
            network=ZeroDelayNetwork(),
            failure=[Exponential(1e-4)],  # mean 10^4
        )
        solver = Theorem1Solver(model, ds=0.01)
        value = solver.reliability([1], ReallocationPolicy.none(1))
        assert value == pytest.approx(1.0, abs=0.01)

    def test_evaluate_dispatch(self):
        solver = Theorem1Solver(small_exp_model(), ds=0.1)
        v = solver.evaluate(
            Metric := __import__("repro.core", fromlist=["Metric"]).Metric.AVG_EXECUTION_TIME,
            [1, 1],
            ReallocationPolicy.none(2),
        )
        assert v.method == "theorem1"
