"""The transform (grid-convolution) solver — closed forms and invariants."""

import math

import pytest

from repro.core import (
    DCSModel,
    HomogeneousNetwork,
    Metric,
    ReallocationPolicy,
    TransformSolver,
    ZeroDelayNetwork,
)
from repro.core.policy import Transfer
from repro.distributions import Deterministic, Exponential, Grid

from ..conftest import exp_network, small_exp_model


def det_model(values=(2.0, 1.0), transfer_latency=1.0, per_task=0.5):
    """Deterministic clocks: every metric has an arithmetic closed form."""
    net = HomogeneousNetwork(
        Deterministic.from_mean, latency=transfer_latency, per_task=per_task, fn_mean=0.1
    )
    return DCSModel(service=[Deterministic(v) for v in values], network=net)


class TestDeterministicClosedForms:
    """With point-mass clocks the solver must produce exact arithmetic."""

    def test_no_transfer(self):
        solver = TransformSolver(det_model(), Grid(dt=0.01, n=4000))
        value = solver.average_execution_time([5, 3], ReallocationPolicy.none(2))
        # max(5*2, 3*1) = 10
        assert value == pytest.approx(10.0, abs=0.02)

    def test_transfer_arriving_after_queue_drains(self):
        solver = TransformSolver(det_model(), Grid(dt=0.01, n=4000))
        # server 2: 3 own tasks (3 s) , batch of 2 arrives at 1 + 0.5*2 = 2 s,
        # finishes at max(3, 2) + 2 = 5; server 1: 3 tasks * 2 = 6
        value = solver.average_execution_time(
            [5, 3], ReallocationPolicy.two_server(2, 0)
        )
        assert value == pytest.approx(6.0, abs=0.02)

    def test_transfer_arriving_at_idle_server(self):
        solver = TransformSolver(det_model(), Grid(dt=0.01, n=4000))
        # server 2 idle: batch of 4 arrives at 1 + 2 = 3, serves 4 -> 7
        # server 1 keeps 1 task -> 2
        value = solver.average_execution_time(
            [5, 0], ReallocationPolicy.two_server(4, 0)
        )
        assert value == pytest.approx(7.0, abs=0.02)

    def test_qos_is_step_function(self):
        solver = TransformSolver(det_model(), Grid(dt=0.01, n=4000))
        pol = ReallocationPolicy.none(2)
        assert solver.qos([5, 3], pol, 9.8) == pytest.approx(0.0, abs=1e-6)
        assert solver.qos([5, 3], pol, 10.2) == pytest.approx(1.0, abs=1e-6)

    def test_deterministic_failure_race(self):
        net = ZeroDelayNetwork()
        model = DCSModel(
            service=[Deterministic(1.0)],
            network=net,
            failure=[Deterministic(3.5)],
        )
        solver = TransformSolver(model, Grid(dt=0.01, n=1000))
        # 3 tasks take 3.0 < 3.5: reliable; 4 tasks take 4.0 > 3.5: doomed
        assert solver.reliability([3], ReallocationPolicy.none(1)) == pytest.approx(
            1.0, abs=1e-6
        )
        assert solver.reliability([4], ReallocationPolicy.none(1)) == pytest.approx(
            0.0, abs=1e-6
        )


class TestExponentialClosedForms:
    def test_single_server_erlang_mean(self):
        model = DCSModel(service=[Exponential(2.0)], network=ZeroDelayNetwork())
        solver = TransformSolver.for_workload(model, [6], dt=0.005)
        value = solver.average_execution_time([6], ReallocationPolicy.none(1))
        assert value == pytest.approx(3.0, rel=2e-3)

    def test_single_server_reliability(self):
        model = DCSModel(
            service=[Exponential(2.0)],
            network=ZeroDelayNetwork(),
            failure=[Exponential(0.1)],
        )
        solver = TransformSolver.for_workload(model, [4], dt=0.005)
        value = solver.reliability([4], ReallocationPolicy.none(1))
        assert value == pytest.approx((2.0 / 2.1) ** 4, rel=2e-3)

    def test_qos_erlang_cdf(self):
        from scipy import stats

        model = DCSModel(service=[Exponential(2.0)], network=ZeroDelayNetwork())
        solver = TransformSolver.for_workload(model, [5], dt=0.005)
        value = solver.qos([5], ReallocationPolicy.none(1), 3.0)
        assert value == pytest.approx(float(stats.gamma.cdf(3.0, 5, scale=0.5)), abs=2e-3)


class TestInvariants:
    @pytest.fixture
    def solver(self):
        return TransformSolver.for_workload(small_exp_model(), [12, 8], dt=0.01)

    def test_empty_workload_zero_time(self, solver):
        assert solver.average_execution_time([0, 0], ReallocationPolicy.none(2)) == 0.0
        assert solver.qos([0, 0], ReallocationPolicy.none(2), 1.0) == 1.0

    def test_more_tasks_take_longer(self, solver):
        pol = ReallocationPolicy.none(2)
        t1 = solver.average_execution_time([5, 5], pol)
        t2 = solver.average_execution_time([8, 5], pol)
        assert t2 > t1

    def test_qos_monotone_in_deadline(self, solver):
        pol = ReallocationPolicy.two_server(3, 1)
        qs = [solver.qos([12, 8], pol, t) for t in (5.0, 10.0, 20.0, 40.0)]
        assert all(a <= b + 1e-12 for a, b in zip(qs, qs[1:]))

    def test_metrics_are_probabilities(self):
        solver = TransformSolver.for_workload(
            small_exp_model(with_failures=True), [12, 8], dt=0.01
        )
        for l12 in (0, 5, 12):
            pol = ReallocationPolicy.two_server(l12, 0)
            r = solver.reliability([12, 8], pol)
            q = solver.qos([12, 8], pol, 15.0)
            assert 0.0 <= r <= 1.0
            assert 0.0 <= q <= 1.0
            # finishing by a finite deadline is harder than finishing at all
            assert q <= r + 1e-9

    def test_reliable_server_reliability_is_one(self, solver):
        assert solver.reliability([12, 8], ReallocationPolicy.none(2)) == pytest.approx(
            1.0
        )

    def test_avg_time_rejects_failing_model(self):
        solver = TransformSolver.for_workload(
            small_exp_model(with_failures=True), [5, 5], dt=0.02
        )
        with pytest.raises(ValueError):
            solver.average_execution_time([5, 5], ReallocationPolicy.none(2))

    def test_evaluate_dispatch(self, solver):
        pol = ReallocationPolicy.two_server(2, 1)
        v = solver.evaluate(Metric.AVG_EXECUTION_TIME, [12, 8], pol)
        assert v.method == "transform"
        with pytest.raises(ValueError):
            solver.evaluate(Metric.QOS, [12, 8], pol)  # missing deadline


class TestCaches:
    def test_service_sum_cached_and_consistent(self):
        solver = TransformSolver.for_workload(small_exp_model(), [10, 5], dt=0.01)
        a = solver.service_sum(0, 7)
        b = solver.service_sum(0, 7)
        assert a is b
        assert a.mean() == pytest.approx(14.0, rel=5e-3)

    def test_service_sum_rejects_negative(self):
        solver = TransformSolver.for_workload(small_exp_model(), [10, 5], dt=0.01)
        with pytest.raises(ValueError):
            solver.service_sum(0, -1)

    def test_transfer_mass_cached(self):
        solver = TransformSolver.for_workload(small_exp_model(), [10, 5], dt=0.01)
        a = solver.transfer_mass(0, 1, 4)
        assert a is solver.transfer_mass(0, 1, 4)
        assert a.mean() == pytest.approx(0.2 + 4.0, rel=5e-3)


class TestMultiGroup:
    def make_three_server(self):
        return DCSModel(
            service=[Exponential(1.0), Exponential(1.0), Exponential(2.0)],
            network=exp_network(),
        )

    def policy_two_senders(self):
        return ReallocationPolicy.from_transfers(
            3, [Transfer(0, 2, 3), Transfer(1, 2, 2)]
        )

    def test_exact_mode_rejects_multi_group(self):
        model = self.make_three_server()
        solver = TransformSolver.for_workload(model, [5, 4, 0], dt=0.02, batch_mode="exact")
        with pytest.raises(ValueError, match="receives 2 groups"):
            solver.average_execution_time([5, 4, 0], self.policy_two_senders())

    def test_merge_max_is_upper_bound_on_single_groups(self):
        """merge-max must dominate the hypothetical earliest-arrival case."""
        model = self.make_three_server()
        solver = TransformSolver.for_workload(
            model, [5, 4, 0], dt=0.02, batch_mode="merge-max"
        )
        value = solver.average_execution_time([5, 4, 0], self.policy_two_senders())
        assert math.isfinite(value) and value > 0

    def test_auto_mode_handles_both(self):
        model = self.make_three_server()
        solver = TransformSolver.for_workload(model, [5, 4, 0], dt=0.02)
        single = ReallocationPolicy.from_transfers(3, [Transfer(0, 2, 3)])
        assert solver.average_execution_time([5, 4, 0], single) > 0
        assert solver.average_execution_time([5, 4, 0], self.policy_two_senders()) > 0

    def test_unknown_batch_mode_rejected(self):
        with pytest.raises(ValueError):
            TransformSolver.for_workload(
                self.make_three_server(), [1, 1, 1], batch_mode="bogus"
            )


class TestForWorkload:
    def test_rejects_empty_workload(self):
        with pytest.raises(ValueError):
            TransformSolver.for_workload(small_exp_model(), [0, 0])

    def test_grid_covers_worst_case(self):
        solver = TransformSolver.for_workload(small_exp_model(), [10, 5], span=4.0)
        # worst case: 15 tasks * 2 s = 30 s; span 4 => horizon >= 120 s
        assert solver.grid.horizon >= 119.0
