"""Pareto family: heavy tails, infinite moments, Lomax aging."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import Pareto, PARETO1_ALPHA, PARETO2_ALPHA
from repro.distributions.pareto import _Lomax


class TestConstruction:
    def test_from_mean_pareto1(self):
        d = Pareto.from_mean(2.0, PARETO1_ALPHA)
        assert d.mean() == pytest.approx(2.0)
        assert d.x_m == pytest.approx(2.0 * 1.5 / 2.5)

    def test_from_mean_requires_alpha_above_one(self):
        with pytest.raises(ValueError):
            Pareto.from_mean(2.0, 1.0)

    @pytest.mark.parametrize("alpha,x_m", [(0.0, 1.0), (-1.0, 1.0), (2.0, 0.0), (2.0, -1.0)])
    def test_rejects_bad_params(self, alpha, x_m):
        with pytest.raises(ValueError):
            Pareto(alpha, x_m)


class TestMoments:
    def test_pareto1_finite_variance(self):
        d = Pareto.from_mean(2.0, PARETO1_ALPHA)
        assert math.isfinite(d.var())
        a, xm = d.alpha, d.x_m
        assert d.var() == pytest.approx(xm**2 * a / ((a - 1) ** 2 * (a - 2)))

    def test_pareto2_infinite_variance_finite_mean(self):
        d = Pareto.from_mean(2.0, PARETO2_ALPHA)
        assert d.mean() == pytest.approx(2.0)
        assert math.isinf(d.var())

    def test_alpha_below_one_infinite_mean(self):
        assert math.isinf(Pareto(0.9, 1.0).mean())


class TestTail:
    def test_survival_power_law(self):
        d = Pareto(2.0, 1.0)
        assert float(d.sf(10.0)) == pytest.approx(0.01)
        assert float(d.sf(100.0)) == pytest.approx(1e-4)

    def test_no_mass_below_xm(self):
        d = Pareto(2.5, 1.5)
        assert float(d.cdf(1.49)) == 0.0
        assert float(d.pdf(1.0)) == 0.0

    @given(alpha=st.floats(1.1, 5.0), x_m=st.floats(0.1, 10.0), t=st.floats(0.0, 50.0))
    @settings(max_examples=60, deadline=None)
    def test_sf_formula(self, alpha, x_m, t):
        d = Pareto(alpha, x_m)
        x = x_m + t
        assert float(d.sf(x)) == pytest.approx((x_m / x) ** alpha, rel=1e-10)


class TestAging:
    """Pareto aging *increases* residual life — the anti-memoryless signature."""

    def test_aged_beyond_xm_is_lomax(self):
        d = Pareto(2.5, 1.0)
        aged = d.aged(3.0)
        assert isinstance(aged, _Lomax)
        assert aged.mean() == pytest.approx(3.0 / 1.5)

    def test_mean_residual_grows_linearly(self):
        d = Pareto(2.0, 1.0)
        assert d.mean_residual(2.0) == pytest.approx(2.0)
        assert d.mean_residual(8.0) == pytest.approx(8.0)

    @given(age1=st.floats(1.0, 10.0), delta=st.floats(0.5, 10.0))
    @settings(max_examples=50, deadline=None)
    def test_residual_life_increases_with_age(self, age1, delta):
        d = Pareto(2.5, 1.0)
        assert d.mean_residual(age1 + delta) > d.mean_residual(age1)

    def test_aged_before_xm_keeps_support_gap(self):
        d = Pareto(2.5, 2.0)
        aged = d.aged(0.5)
        lo, _ = aged.support()
        assert lo == pytest.approx(1.5)
        assert float(aged.sf(1.0)) == 1.0

    def test_lomax_aging_composes(self):
        lom = _Lomax(2.5, 3.0)
        assert lom.aged(2.0).scale == pytest.approx(5.0)
        assert lom.aged(0.0) is lom


class TestLomax:
    def test_moments(self):
        lom = _Lomax(3.0, 4.0)
        assert lom.mean() == pytest.approx(2.0)
        assert lom.var() == pytest.approx(16.0 * 3.0 / (4.0 * 1.0))

    def test_sampling_matches_cdf(self):
        rng = np.random.default_rng(0)
        lom = _Lomax(2.5, 1.0)
        xs = np.asarray(lom.sample(rng, 50_000))
        for probe in (0.5, 1.0, 3.0):
            assert float(np.mean(xs <= probe)) == pytest.approx(
                float(lom.cdf(probe)), abs=0.01
            )

    def test_infinite_moments(self):
        assert math.isinf(_Lomax(0.9, 1.0).mean())
        assert math.isinf(_Lomax(1.5, 1.0).var())
