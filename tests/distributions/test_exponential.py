"""Exponential family: closed forms and the memoryless property."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import Exponential


class TestConstruction:
    def test_from_mean(self):
        d = Exponential.from_mean(4.0)
        assert d.rate == pytest.approx(0.25)
        assert d.mean() == pytest.approx(4.0)

    @pytest.mark.parametrize("bad", [0.0, -1.0, math.inf, math.nan])
    def test_rejects_bad_rate(self, bad):
        with pytest.raises(ValueError):
            Exponential(bad)

    @pytest.mark.parametrize("bad", [0.0, -3.0])
    def test_rejects_bad_mean(self, bad):
        with pytest.raises(ValueError):
            Exponential.from_mean(bad)


class TestClosedForms:
    def test_pdf(self):
        d = Exponential(2.0)
        assert float(d.pdf(0.0)) == pytest.approx(2.0)
        assert float(d.pdf(1.0)) == pytest.approx(2.0 * math.exp(-2.0))
        assert float(d.pdf(-0.1)) == 0.0

    def test_cdf_sf(self):
        d = Exponential(0.5)
        assert float(d.cdf(2.0)) == pytest.approx(1.0 - math.exp(-1.0))
        assert float(d.sf(2.0)) == pytest.approx(math.exp(-1.0))

    def test_var(self):
        assert Exponential(0.5).var() == pytest.approx(4.0)

    def test_quantile_closed_form(self):
        d = Exponential(1.5)
        assert float(d.quantile(0.5)) == pytest.approx(math.log(2.0) / 1.5)

    def test_hazard_constant(self):
        d = Exponential(0.7)
        xs = np.array([0.0, 1.0, 5.0, 20.0])
        np.testing.assert_allclose(np.asarray(d.hazard(xs)), 0.7, rtol=1e-12)


class TestMemorylessness:
    """The property that makes the Markovian model age-free."""

    @given(
        rate=st.floats(0.1, 10.0),
        age=st.floats(0.0, 50.0),
        t=st.floats(0.0, 20.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_aged_is_same_distribution(self, rate, age, t):
        d = Exponential(rate)
        aged = d.aged(age)
        assert aged is d
        assert float(aged.sf(t)) == pytest.approx(float(d.sf(t)))

    @given(rate=st.floats(0.1, 10.0), age=st.floats(0.0, 100.0))
    @settings(max_examples=40, deadline=None)
    def test_mean_residual_constant(self, rate, age):
        assert Exponential(rate).mean_residual(age) == pytest.approx(1.0 / rate)

    def test_mean_residual_rejects_negative_age(self):
        with pytest.raises(ValueError):
            Exponential(1.0).mean_residual(-1.0)


class TestVectorization:
    def test_scalar_in_scalar_out(self):
        d = Exponential(1.0)
        assert np.ndim(d.pdf(1.0)) == 0
        assert np.ndim(d.cdf(1.0)) == 0
        assert np.ndim(d.quantile(0.3)) == 0

    def test_array_shapes_preserved(self):
        d = Exponential(1.0)
        xs = np.ones((4, 7))
        assert np.asarray(d.pdf(xs)).shape == (4, 7)
        assert np.asarray(d.sf(xs)).shape == (4, 7)
