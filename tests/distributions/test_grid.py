"""Grid mass algebra: discretization, convolution, max/min, shifting, tails."""

import math

import numpy as np
import pytest

from repro.distributions import (
    Deterministic,
    Exponential,
    Grid,
    GridMass,
    Pareto,
    ShiftedExponential,
    Uniform,
    delta,
    from_distribution,
    minimum_of,
)

FINE = Grid(dt=0.01, n=4000)  # horizon ~40


class TestGrid:
    def test_times_and_edges(self):
        g = Grid(dt=0.5, n=4)
        np.testing.assert_allclose(g.times, [0.0, 0.5, 1.0, 1.5])
        np.testing.assert_allclose(g.edges, [0.0, 0.25, 0.75, 1.25, 1.75])

    def test_horizon(self):
        assert Grid(dt=0.5, n=4).horizon == pytest.approx(1.75)

    def test_index_of(self):
        g = Grid(dt=0.5, n=10)
        assert g.index_of(0.0) == 0
        assert g.index_of(0.74) == 1
        assert g.index_of(0.76) == 2

    def test_index_of_rejects_times_beyond_horizon(self):
        """Regression: times past the horizon used to yield out-of-range
        indices that could address past the mass vector."""
        g = Grid(dt=0.5, n=10)  # horizon = 4.75
        with pytest.raises(ValueError):
            g.index_of(5.0)
        with pytest.raises(ValueError):
            g.index_of(1e9)

    def test_index_of_clamps_on_request(self):
        g = Grid(dt=0.5, n=10)
        assert g.index_of(5.0, clamp=True) == 9
        assert g.index_of(1e9, clamp=True) == 9

    def test_index_of_boundary_stays_in_range(self):
        """The last cell's upper edge rounds up but must stay indexable."""
        for n in (9, 10):  # both round-to-even parities
            g = Grid(dt=0.5, n=n)
            assert g.index_of(g.horizon) == n - 1

    def test_delta_beyond_horizon_is_all_tail(self):
        g = Grid(dt=0.5, n=10)
        m = delta(g, 100.0)
        assert m.total == 0.0
        assert m.tail == 1.0

    def test_delta_rejects_negative_time(self):
        with pytest.raises(ValueError):
            delta(Grid(dt=0.5, n=10), -1.0)

    @pytest.mark.parametrize("dt,n", [(0.0, 10), (-1.0, 10), (1.0, 1)])
    def test_rejects_bad_params(self, dt, n):
        with pytest.raises(ValueError):
            Grid(dt=dt, n=n)


class TestDiscretization:
    @pytest.mark.parametrize(
        "dist",
        [
            Exponential(1.0),
            Uniform(0.5, 3.0),
            ShiftedExponential(1.0, 1.0),
            Pareto(2.5, 1.0),
        ],
        ids=["exp", "uniform", "shifted-exp", "pareto"],
    )
    def test_mass_total_and_mean(self, dist):
        m = from_distribution(dist, FINE)
        assert m.total == pytest.approx(1.0, abs=1e-4)
        assert m.mean() == pytest.approx(dist.mean(), rel=2e-3)

    def test_atom_at_zero_lands_in_cell_zero(self):
        m = from_distribution(Deterministic(0.0), FINE)
        assert m.mass[0] == pytest.approx(1.0)

    def test_atom_mass_at_value(self):
        m = from_distribution(Deterministic(1.0), FINE)
        assert m.mass[FINE.index_of(1.0)] == pytest.approx(1.0)

    def test_cdf_matches_distribution(self):
        d = Exponential(0.7)
        m = from_distribution(d, FINE)
        probe_idx = [10, 100, 1000]
        for i in probe_idx:
            assert m.cdf()[i] == pytest.approx(float(d.cdf(FINE.times[i])), abs=5e-3)

    def test_cdf_at_interpolates(self):
        m = from_distribution(Exponential(1.0), FINE)
        assert m.cdf_at(1.0) == pytest.approx(1.0 - math.exp(-1.0), abs=1e-3)
        assert m.cdf_at(-0.5) == 0.0

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            GridMass(FINE, np.ones(5))

    def test_rejects_negative_mass(self):
        bad = np.zeros(FINE.n)
        bad[0] = -0.5
        with pytest.raises(ValueError):
            GridMass(FINE, bad)


class TestConvolution:
    def test_exp_plus_exp_is_erlang(self):
        m = from_distribution(Exponential(1.0), FINE)
        s = m.conv(m)
        # Erlang-2 cdf: 1 - e^-t (1 + t)
        t = 2.0
        expected = 1.0 - math.exp(-t) * (1.0 + t)
        assert s.cdf_at(t) == pytest.approx(expected, abs=2e-3)
        assert s.mean() == pytest.approx(2.0, rel=1e-3)

    def test_delta_is_identity(self):
        m = from_distribution(Uniform(0.0, 2.0), FINE)
        s = m.conv(delta(FINE))
        np.testing.assert_allclose(s.mass, m.mass, atol=1e-12)

    def test_conv_commutes(self):
        a = from_distribution(Exponential(1.0), FINE)
        b = from_distribution(Uniform(0.0, 2.0), FINE)
        np.testing.assert_allclose(a.conv(b).mass, b.conv(a).mass, atol=1e-12)

    def test_conv_power_zero_is_delta(self):
        m = from_distribution(Exponential(1.0), FINE)
        z = m.conv_power(0)
        assert z.mass[0] == pytest.approx(1.0)

    def test_conv_power_matches_iterated(self):
        m = from_distribution(Exponential(2.0), FINE)
        by_power = m.conv_power(5)
        iterated = m
        for _ in range(4):
            iterated = iterated.conv(m)
        np.testing.assert_allclose(by_power.mass, iterated.mass, atol=1e-9)

    def test_conv_power_mean_additive(self):
        m = from_distribution(Uniform(0.0, 1.0), FINE)
        assert m.conv_power(7).mean() == pytest.approx(3.5, rel=1e-3)

    def test_conv_power_negative_raises(self):
        m = from_distribution(Exponential(1.0), FINE)
        with pytest.raises(ValueError):
            m.conv_power(-1)

    def test_mass_escaping_horizon_goes_to_tail(self):
        tiny = Grid(dt=0.1, n=30)  # horizon ~3
        m = from_distribution(Exponential(0.5), tiny)  # mean 2
        s = m.conv(m)  # mean 4 >> horizon
        assert s.tail > 0.3
        assert s.total == pytest.approx(1.0 - s.tail)

    def test_different_grids_rejected(self):
        a = from_distribution(Exponential(1.0), FINE)
        b = from_distribution(Exponential(1.0), Grid(dt=0.02, n=100))
        with pytest.raises(ValueError):
            a.conv(b)


class TestMaxMin:
    def test_max_of_uniforms(self):
        """max of two U[0,1]: cdf t^2, mean 2/3."""
        m = from_distribution(Uniform(0.0, 1.0), FINE)
        mx = m.maximum(m)
        assert mx.mean() == pytest.approx(2.0 / 3.0, abs=2e-3)
        assert mx.cdf_at(0.5) == pytest.approx(0.25, abs=5e-3)

    def test_min_of_exponentials(self):
        """min of Exp(1), Exp(2) is Exp(3)."""
        a = from_distribution(Exponential(1.0), FINE)
        b = from_distribution(Exponential(2.0), FINE)
        mn = minimum_of(a, b)
        assert mn.mean() == pytest.approx(1.0 / 3.0, rel=5e-3)

    def test_max_with_delta_zero_is_identity(self):
        m = from_distribution(Uniform(0.5, 2.0), FINE)
        mx = m.maximum(delta(FINE))
        assert mx.mean() == pytest.approx(m.mean(), rel=1e-9)

    def test_max_method_alias(self):
        a = from_distribution(Exponential(1.0), FINE)
        b = from_distribution(Exponential(2.0), FINE)
        np.testing.assert_allclose(a.minimum(b).mass, minimum_of(a, b).mass)

    def test_max_stochastically_dominates_inputs(self):
        a = from_distribution(Exponential(1.0), FINE)
        b = from_distribution(Uniform(0.0, 2.0), FINE)
        mx = a.maximum(b)
        assert np.all(mx.cdf() <= a.cdf() + 1e-12)
        assert np.all(mx.cdf() <= b.cdf() + 1e-12)


class TestShift:
    def test_integer_cell_shift(self):
        m = from_distribution(Exponential(1.0), FINE)
        s = m.shift(0.5)
        assert s.mean() == pytest.approx(1.5, rel=1e-3)

    def test_fractional_shift_keeps_mean_exact(self):
        m = from_distribution(Exponential(1.0), FINE)
        s2 = m.shift(0.5049)  # deliberately not a multiple of dt = 0.01
        assert s2.mean() == pytest.approx(1.5049, rel=1e-3)

    def test_zero_shift_is_same_object(self):
        m = from_distribution(Exponential(1.0), FINE)
        assert m.shift(0.0) is m

    def test_negative_shift_rejected(self):
        m = from_distribution(Exponential(1.0), FINE)
        with pytest.raises(ValueError):
            m.shift(-0.1)


class TestTailCorrection:
    def test_pareto_truncated_mean_recovered(self):
        """Truncate a Pareto harshly; the fitted tail restores most of E[T]."""
        short = Grid(dt=0.01, n=2000)  # horizon 20
        d = Pareto(1.5, 1.0)  # mean 3, very heavy tail
        m = from_distribution(d, short)
        assert m.tail > 0.005
        plain = m.mean(tail_correction=False)
        corrected = m.mean(tail_correction=True)
        assert plain < corrected
        # correction recovers at least half of the missing mean
        assert abs(corrected - 3.0) < abs(plain - 3.0) * 0.6

    def test_light_tail_unaffected(self):
        m = from_distribution(Exponential(1.0), FINE)
        assert m.mean(tail_correction=True) == pytest.approx(
            m.mean(tail_correction=False), rel=1e-9
        )

    def test_expect_sf_weighted(self):
        """E[S_Y(T)] for exponential T and Y has closed form r/(r+q)."""
        m = from_distribution(Exponential(1.0), FINE)
        weights = np.exp(-0.5 * FINE.times)
        val = m.expect_sf_weighted(weights)
        assert val == pytest.approx(1.0 / 1.5, abs=5e-3)

    def test_expect_sf_weighted_shape_check(self):
        m = from_distribution(Exponential(1.0), FINE)
        with pytest.raises(ValueError):
            m.expect_sf_weighted(np.ones(3))
