"""MLE fitters and the paper's histogram-TSE model selection (Sec. III-B)."""

import numpy as np
import pytest

from repro.distributions import (
    Exponential,
    Pareto,
    ShiftedExponential,
    ShiftedGamma,
    Uniform,
    Weibull,
    fit_exponential,
    fit_pareto,
    fit_shifted_exponential,
    fit_shifted_gamma,
    fit_uniform,
    fit_weibull,
    select_model,
)
from repro.distributions.fitting import FITTERS


@pytest.fixture
def rng():
    return np.random.default_rng(99)


class TestMLERecovery:
    """Each fitter recovers its own family's parameters from big samples."""

    def test_exponential(self, rng):
        d = fit_exponential(Exponential(0.8).sample(rng, 20_000))
        assert d.rate == pytest.approx(0.8, rel=0.03)

    def test_pareto(self, rng):
        d = fit_pareto(Pareto(2.5, 1.3).sample(rng, 20_000))
        assert d.alpha == pytest.approx(2.5, rel=0.05)
        assert d.x_m == pytest.approx(1.3, rel=0.01)

    def test_shifted_exponential(self, rng):
        d = fit_shifted_exponential(ShiftedExponential(0.7, 2.0).sample(rng, 20_000))
        assert d.shift == pytest.approx(0.7, abs=0.01)
        assert d.rate == pytest.approx(2.0, rel=0.05)

    def test_uniform(self, rng):
        d = fit_uniform(Uniform(0.5, 2.5).sample(rng, 20_000))
        assert d.lo == pytest.approx(0.5, abs=0.01)
        assert d.hi == pytest.approx(2.5, abs=0.01)

    def test_weibull(self, rng):
        d = fit_weibull(Weibull(1.8, 2.2).sample(rng, 20_000))
        assert d.shape == pytest.approx(1.8, rel=0.05)
        assert d.scale == pytest.approx(2.2, rel=0.05)

    def test_shifted_gamma(self, rng):
        truth = ShiftedGamma(2.0, 0.5, 0.4)
        d = fit_shifted_gamma(truth.sample(rng, 20_000))
        assert d.mean() == pytest.approx(truth.mean(), rel=0.03)
        assert d.shift == pytest.approx(0.4, abs=0.15)

    def test_shifted_gamma_with_known_shift(self, rng):
        truth = ShiftedGamma(2.0, 0.5, 0.4)
        d = fit_shifted_gamma(truth.sample(rng, 20_000), shift=0.4)
        assert d.shape == pytest.approx(2.0, rel=0.1)
        assert d.scale == pytest.approx(0.5, rel=0.1)


class TestFitterValidation:
    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            fit_exponential([1.0])

    def test_negative_samples(self):
        with pytest.raises(ValueError):
            fit_exponential([1.0, -2.0])

    def test_nan_samples(self):
        with pytest.raises(ValueError):
            fit_pareto([1.0, np.nan])

    def test_constant_samples_degenerate(self):
        with pytest.raises(ValueError):
            fit_pareto([2.0, 2.0, 2.0])
        with pytest.raises(ValueError):
            fit_uniform([2.0, 2.0, 2.0])
        with pytest.raises(ValueError):
            fit_shifted_exponential([2.0, 2.0, 2.0])

    def test_shifted_gamma_shift_out_of_range(self, rng):
        samples = ShiftedGamma(2.0, 0.5, 0.4).sample(rng, 100)
        with pytest.raises(ValueError):
            fit_shifted_gamma(samples, shift=float(np.min(samples)) + 1.0)


class TestModelSelection:
    """The paper's rule: minimum total squared error vs the histogram."""

    @pytest.mark.parametrize(
        "truth,expected",
        [
            (Pareto(2.5, 1.2), "pareto"),
            (ShiftedGamma(3.0, 0.4, 0.3), "shifted-gamma"),
            (Uniform(0.5, 2.0), "uniform"),
            (Exponential(1.0), "exponential"),
        ],
        ids=["pareto", "shifted-gamma", "uniform", "exponential"],
    )
    def test_selects_generating_family(self, rng, truth, expected):
        samples = truth.sample(rng, 8000)
        sel = select_model(samples)
        # exponential data is also fit well by gamma/weibull (supersets);
        # accept any family whose law matches closely
        if expected == "exponential":
            assert sel.family in ("exponential", "shifted-gamma", "weibull", "shifted-exponential")
        else:
            assert sel.family == expected

    def test_candidates_sorted_by_error(self, rng):
        sel = select_model(Pareto(2.5, 1.0).sample(rng, 3000))
        errs = [c.squared_error for c in sel.candidates]
        assert errs == sorted(errs)

    def test_family_restriction(self, rng):
        samples = Pareto(2.5, 1.0).sample(rng, 3000)
        sel = select_model(samples, families=("exponential", "uniform"))
        assert sel.family in ("exponential", "uniform")

    def test_unknown_family_rejected(self, rng):
        with pytest.raises(KeyError):
            select_model(Exponential(1.0).sample(rng, 100), families=("nope",))

    def test_histogram_metadata_exposed(self, rng):
        sel = select_model(Exponential(1.0).sample(rng, 2000), bins=25)
        assert sel.histogram.shape == (25,)
        assert sel.bin_edges.shape == (26,)

    def test_registry_covers_all_fitters(self):
        assert set(FITTERS) == {
            "exponential",
            "pareto",
            "shifted-exponential",
            "shifted-gamma",
            "uniform",
            "weibull",
        }

    def test_robust_to_unfittable_families(self, rng):
        """Constant-ish data breaks several MLEs; selection must survive."""
        samples = np.full(100, 2.0) + rng.normal(0, 1e-6, 100).clip(-1e-7, 1e-7) + 1e-5
        sel = select_model(np.abs(samples))
        assert sel.best is not None
