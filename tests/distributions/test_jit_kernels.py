"""Compiled inner-loop twins: jit and pure-numpy paths must agree exactly."""

import numpy as np
import pytest

from repro.distributions import jit_kernels
from repro.distributions.jit_kernels import (
    HAVE_NUMBA,
    adjoint_collapse,
    clip_nonneg,
    exact2_pre_second,
    numba_version,
    surface_cap,
)

JIT_MODES = [False, True] if HAVE_NUMBA else [False]


class TestAvailabilityReporting:
    def test_numba_version_consistent_with_flag(self):
        version = numba_version()
        if HAVE_NUMBA:
            assert isinstance(version, str) and version
        else:
            assert version is None

    def test_jit_request_without_numba_uses_numpy_path(self, rng):
        """jit=True must be safe (silent numpy execution) when numba is absent;
        the user-facing warning lives at the solver layer, not here."""
        out = rng.random(16) - 0.5
        expected = np.maximum(out.copy(), 0.0)
        got = clip_nonneg(out.copy(), jit=True)
        np.testing.assert_array_equal(got, expected)


@pytest.mark.parametrize("jit", JIT_MODES)
class TestTwins:
    def test_clip_nonneg(self, jit, rng):
        x = rng.standard_normal((4, 9))
        expected = np.maximum(x, 0.0)
        got = clip_nonneg(x.copy(), jit=jit)
        np.testing.assert_array_equal(got, expected)

    def test_clip_nonneg_is_in_place(self, jit, rng):
        x = rng.standard_normal(8)
        out = clip_nonneg(x, jit=jit)
        assert out is x

    def test_adjoint_collapse_matches_reference(self, jit, rng):
        n = 11
        q = rng.standard_normal((3, n + 4))
        expected = q[:, :n].copy()
        expected[:, :-1] -= q[:, 1:n]
        got = adjoint_collapse(q, n, jit=jit)
        np.testing.assert_array_equal(got, expected)
        # input untouched
        assert q.shape == (3, n + 4)

    def test_adjoint_collapse_1d(self, jit, rng):
        n = 7
        q = rng.standard_normal(n)
        expected = q[:n].copy()
        expected[:-1] -= q[1:n]
        np.testing.assert_array_equal(adjoint_collapse(q, n, jit=jit), expected)

    def test_exact2_pre_second_matches_reference(self, jit, rng):
        n = 32
        m_row = rng.random(n)
        n_row = rng.random(n)
        step_w2 = np.cumsum(rng.random(n) * 0.01)
        cells = np.array([3, 3, 10, 31])
        weights = rng.random(4)
        # reference: PW2*M - N + sum_s w2_s * exclusive_cumsum(M)[r_s] at r_s
        pre = step_w2 * m_row - n_row
        excl = np.concatenate(([0.0], np.cumsum(m_row)[:-1]))
        np.add.at(pre, cells, weights * excl[cells])
        got = exact2_pre_second(
            m_row.copy(), n_row, step_w2, cells, weights, jit=jit
        )
        np.testing.assert_allclose(got, pre, atol=1e-15)

    def test_surface_cap_upper_only(self, jit):
        surface = np.array([[-0.25, 0.5], [1.5, 1.0]])
        got = surface_cap(surface.copy(), jit=jit)
        # upper cap only — negatives pass through exactly like np.minimum
        np.testing.assert_array_equal(got, np.array([[-0.25, 0.5], [1.0, 1.0]]))


class TestCompilationCache:
    def test_compiled_registry_only_populated_with_numba(self, rng):
        clip_nonneg(rng.random(4), jit=True)
        if not HAVE_NUMBA:
            assert jit_kernels._COMPILED == {}
