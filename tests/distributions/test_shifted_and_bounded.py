"""Shifted-exponential, shifted-gamma, uniform, Weibull, deterministic laws."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import (
    Deterministic,
    Exponential,
    ShiftedExponential,
    ShiftedGamma,
    SupportError,
    Uniform,
    Weibull,
)


class TestShiftedExponential:
    def test_from_mean_default_split(self):
        d = ShiftedExponential.from_mean(2.0)
        assert d.shift == pytest.approx(1.0)
        assert d.mean() == pytest.approx(2.0)

    def test_minimum_delay_is_hard(self):
        """The paper's motivation: non-zero minimum propagation delay."""
        d = ShiftedExponential(1.0, 2.0)
        assert float(d.cdf(0.99)) == 0.0
        assert float(d.sf(0.5)) == 1.0

    def test_aging_consumes_shift_then_memoryless(self):
        d = ShiftedExponential(1.0, 2.0)
        partly = d.aged(0.4)
        assert isinstance(partly, ShiftedExponential)
        assert partly.shift == pytest.approx(0.6)
        fully = d.aged(1.5)
        assert isinstance(fully, Exponential)
        assert fully.rate == pytest.approx(2.0)

    @given(shift=st.floats(0.0, 5.0), rate=st.floats(0.2, 5.0))
    @settings(max_examples=40, deadline=None)
    def test_var_ignores_shift(self, shift, rate):
        assert ShiftedExponential(shift, rate).var() == pytest.approx(rate**-2)

    def test_rejects_negative_shift(self):
        with pytest.raises(ValueError):
            ShiftedExponential(-0.1, 1.0)

    def test_from_mean_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            ShiftedExponential.from_mean(2.0, shift_fraction=1.0)


class TestShiftedGamma:
    def test_from_mean(self):
        d = ShiftedGamma.from_mean(2.0, shape=2.0, shift_fraction=0.3)
        assert d.mean() == pytest.approx(2.0)
        assert d.shift == pytest.approx(0.6)

    def test_cdf_sf_consistent_with_scipy(self):
        from scipy import stats

        d = ShiftedGamma(2.5, 0.8, 0.5)
        xs = np.linspace(0.0, 10.0, 50)
        expected = stats.gamma.cdf(np.maximum(xs - 0.5, 0.0), 2.5, scale=0.8)
        np.testing.assert_allclose(np.asarray(d.cdf(xs)), expected, atol=1e-12)

    def test_mean_residual_closed_form_vs_quadrature(self):
        from repro.distributions.base import Distribution

        d = ShiftedGamma(2.0, 0.7, 0.4)
        for a in (0.0, 0.2, 1.0, 3.0):
            generic = Distribution.mean_residual(d, a)
            assert d.mean_residual(a) == pytest.approx(generic, rel=1e-6)

    def test_mean_residual_far_tail_converges_to_scale(self):
        d = ShiftedGamma(2.0, 0.7, 0.0)
        assert d.mean_residual(200.0) == pytest.approx(0.7, rel=0.05)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ShiftedGamma(0.0, 1.0)
        with pytest.raises(ValueError):
            ShiftedGamma(1.0, -1.0)
        with pytest.raises(ValueError):
            ShiftedGamma(1.0, 1.0, -0.5)


class TestUniform:
    def test_from_mean_full_width(self):
        d = Uniform.from_mean(2.0)
        assert d.support() == (0.0, 4.0)

    def test_from_mean_narrow(self):
        d = Uniform.from_mean(2.0, half_width_fraction=0.5)
        assert d.support() == (1.0, 3.0)
        assert d.mean() == pytest.approx(2.0)

    def test_aging_shrinks_support(self):
        d = Uniform(1.0, 3.0)
        aged = d.aged(2.0)
        assert aged.support() == (0.0, 1.0)
        assert aged.mean() == pytest.approx(0.5)

    def test_aging_past_support_raises(self):
        with pytest.raises(SupportError):
            Uniform(0.0, 2.0).aged(2.5)

    def test_mean_residual_past_support_raises(self):
        with pytest.raises(SupportError):
            Uniform(0.0, 2.0).mean_residual(3.0)

    @given(a=st.floats(0.0, 1.9))
    @settings(max_examples=40, deadline=None)
    def test_hazard_increases_with_age(self, a):
        """Bounded support => increasing hazard => aging shortens life."""
        d = Uniform(0.0, 2.0)
        assert d.mean_residual(a) <= d.mean() + 1e-12

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            Uniform(2.0, 1.0)


class TestWeibull:
    def test_from_mean(self):
        d = Weibull.from_mean(3.0, shape=2.0)
        assert d.mean() == pytest.approx(3.0)

    def test_shape_one_is_exponential(self):
        w = Weibull(1.0, 2.0)
        e = Exponential(0.5)
        xs = np.linspace(0.0, 10.0, 30)
        np.testing.assert_allclose(np.asarray(w.sf(xs)), np.asarray(e.sf(xs)), rtol=1e-10)
        np.testing.assert_allclose(np.asarray(w.pdf(xs)), np.asarray(e.pdf(xs)), rtol=1e-10)

    def test_increasing_hazard_shortens_residual_life(self):
        d = Weibull(2.0, 1.0)
        assert d.mean_residual(2.0) < d.mean_residual(1.0) < d.mean()

    def test_decreasing_hazard_lengthens_residual_life(self):
        d = Weibull(0.5, 1.0)
        assert d.mean_residual(2.0) > d.mean_residual(1.0) > d.mean()

    def test_mean_residual_matches_quadrature(self):
        from repro.distributions.base import Distribution

        d = Weibull(1.7, 2.3)
        for a in (0.0, 0.5, 2.0, 5.0):
            assert d.mean_residual(a) == pytest.approx(
                Distribution.mean_residual(d, a), rel=1e-6
            )

    def test_pdf_at_zero_shape_above_one(self):
        assert float(Weibull(2.0, 1.0).pdf(0.0)) == 0.0


class TestDeterministic:
    def test_atom_semantics(self):
        d = Deterministic(2.0)
        assert float(d.cdf(1.999)) == 0.0
        assert float(d.cdf(2.0)) == 1.0
        assert d.var() == 0.0

    def test_aging_counts_down(self):
        d = Deterministic(2.0)
        assert d.aged(1.5).value == pytest.approx(0.5)
        with pytest.raises(SupportError):
            d.aged(2.5)

    def test_sample_is_constant(self):
        rng = np.random.default_rng(0)
        d = Deterministic(3.0)
        assert d.sample(rng) == 3.0
        assert np.all(np.asarray(d.sample(rng, 10)) == 3.0)

    def test_zero_atom_allowed(self):
        d = Deterministic(0.0)
        assert float(d.cdf(0.0)) == 1.0
        assert d.mean() == 0.0
