"""Erlang family: low-variability model, stage-posterior aging (IFR)."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import Erlang, Exponential
from repro.distributions.erlang import _MixedErlang


class TestConstruction:
    def test_from_mean(self):
        e = Erlang.from_mean(2.0, k=4)
        assert e.mean() == pytest.approx(2.0)
        assert e.cv() == pytest.approx(0.5)

    def test_k_one_is_exponential(self):
        e = Erlang(1, 0.5)
        x = np.linspace(0, 10, 40)
        np.testing.assert_allclose(
            np.asarray(e.sf(x)), np.asarray(Exponential(0.5).sf(x)), rtol=1e-12
        )

    @pytest.mark.parametrize("bad_k", [0, -1, 1.5])
    def test_rejects_bad_k(self, bad_k):
        with pytest.raises(ValueError):
            Erlang(bad_k, 1.0)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            Erlang(2, 0.0)


class TestMoments:
    def test_variance(self):
        e = Erlang(4, 2.0)
        assert e.var() == pytest.approx(1.0)

    def test_cv_shrinks_with_k(self):
        cvs = [Erlang.from_mean(1.0, k).cv() for k in (1, 4, 16)]
        assert cvs == sorted(cvs, reverse=True)
        assert cvs[0] == pytest.approx(1.0)

    def test_sampling(self):
        rng = np.random.default_rng(0)
        e = Erlang(3, 1.5)
        xs = np.asarray(e.sample(rng, 50_000))
        assert float(xs.mean()) == pytest.approx(2.0, rel=0.02)
        assert float(xs.var()) == pytest.approx(3.0 / 1.5**2, rel=0.05)


class TestAging:
    @given(age=st.floats(0.01, 10.0), t=st.floats(0.0, 5.0))
    @settings(max_examples=60, deadline=None)
    def test_aged_survival_identity(self, age, t):
        e = Erlang(4, 2.0)
        aged = e.aged(age)
        expected = float(e.sf(age + t)) / float(e.sf(age))
        assert float(aged.sf(t)) == pytest.approx(expected, rel=1e-9)

    def test_aged_is_erlang_mixture(self):
        aged = Erlang(4, 2.0).aged(1.0)
        assert isinstance(aged, _MixedErlang)
        assert aged.weights.size == 4
        assert aged.weights.sum() == pytest.approx(1.0)

    def test_residual_life_shrinks_with_age(self):
        """IFR — the opposite of the paper's Pareto (DFR)."""
        e = Erlang(4, 2.0)
        rs = [e.mean_residual(a) for a in (0.0, 1.0, 3.0, 10.0)]
        assert all(a > b for a, b in zip(rs, rs[1:]))

    def test_residual_life_converges_to_last_stage(self):
        """Approaches 1/rate like (1 + (k-1)/(rate*a))/rate — slowly."""
        e = Erlang(4, 2.0)
        assert e.mean_residual(50.0) == pytest.approx(0.5, rel=0.05)
        assert e.mean_residual(500.0) == pytest.approx(0.5, rel=0.005)
        assert e.mean_residual(500.0) > 0.5  # from above, never below

    def test_mean_residual_matches_aged_mean(self):
        e = Erlang(3, 1.0)
        assert e.mean_residual(2.0) == pytest.approx(e.aged(2.0).mean())

    def test_aged_sampling_matches_cdf(self):
        rng = np.random.default_rng(1)
        aged = Erlang(4, 2.0).aged(1.5)
        xs = np.asarray(aged.sample(rng, 40_000))
        for probe in (0.3, 1.0, 2.0):
            assert float(np.mean(xs <= probe)) == pytest.approx(
                float(aged.cdf(probe)), abs=0.015
            )


class TestMixedErlang:
    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            _MixedErlang(1.0, [0.5, 0.4])

    def test_moments(self):
        m = _MixedErlang(2.0, [0.5, 0.5])  # Erlang1 & Erlang2, rate 2
        assert m.mean() == pytest.approx(0.5 * 0.5 + 0.5 * 1.0)
        assert m.var() > 0

    def test_solver_compatibility(self):
        from repro.core import DCSModel, ReallocationPolicy, TransformSolver, ZeroDelayNetwork

        model = DCSModel(
            service=[Erlang.from_mean(1.0, 4)], network=ZeroDelayNetwork()
        )
        solver = TransformSolver.for_workload(model, [5], dt=0.01)
        value = solver.average_execution_time([5], ReallocationPolicy.none(1))
        assert value == pytest.approx(5.0, rel=0.01)
