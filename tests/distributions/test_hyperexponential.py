"""Hyperexponential family: mixtures, cv fitting, Bayesian aging."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import Exponential, Hyperexponential


class TestConstruction:
    def test_from_mean_and_cv(self):
        h = Hyperexponential.from_mean_and_cv(2.0, cv=3.0)
        assert h.mean() == pytest.approx(2.0)
        assert h.cv() == pytest.approx(3.0)

    def test_cv_one_degenerates_to_exponential(self):
        h = Hyperexponential.from_mean_and_cv(2.0, cv=1.0)
        e = Exponential.from_mean(2.0)
        xs = np.linspace(0, 10, 50)
        np.testing.assert_allclose(np.asarray(h.sf(xs)), np.asarray(e.sf(xs)), rtol=1e-12)

    def test_rejects_cv_below_one(self):
        with pytest.raises(ValueError):
            Hyperexponential.from_mean_and_cv(2.0, cv=0.5)

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            Hyperexponential([0.5, 0.4], [1.0, 2.0])  # doesn't sum to 1
        with pytest.raises(ValueError):
            Hyperexponential([1.2, -0.2], [1.0, 2.0])

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            Hyperexponential([0.5, 0.5], [1.0, -2.0])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            Hyperexponential([0.5, 0.5], [1.0])


class TestLaw:
    @pytest.fixture
    def h(self):
        return Hyperexponential([0.3, 0.7], [0.25, 2.0])

    def test_sf_is_weighted_sum(self, h):
        x = 1.7
        expected = 0.3 * math.exp(-0.25 * x) + 0.7 * math.exp(-2.0 * x)
        assert float(h.sf(x)) == pytest.approx(expected)

    def test_mean_and_var(self, h):
        assert h.mean() == pytest.approx(0.3 / 0.25 + 0.7 / 2.0)
        second = 2 * (0.3 / 0.25**2 + 0.7 / 2.0**2)
        assert h.var() == pytest.approx(second - h.mean() ** 2)

    def test_cv_at_least_one(self, h):
        assert h.cv() >= 1.0

    def test_sampling_matches_cdf(self, h):
        rng = np.random.default_rng(0)
        xs = np.asarray(h.sample(rng, 60_000))
        for probe in (0.2, 1.0, 4.0):
            assert float(np.mean(xs <= probe)) == pytest.approx(
                float(h.cdf(probe)), abs=0.01
            )

    def test_scalar_sample(self, h):
        rng = np.random.default_rng(1)
        assert np.ndim(h.sample(rng)) == 0


class TestAging:
    def test_aged_stays_hyperexponential(self):
        h = Hyperexponential([0.5, 0.5], [0.2, 5.0])
        aged = h.aged(2.0)
        assert isinstance(aged, Hyperexponential)
        np.testing.assert_allclose(aged.rates, h.rates)

    def test_aging_shifts_weight_to_slow_class(self):
        h = Hyperexponential([0.5, 0.5], [0.2, 5.0])
        aged = h.aged(2.0)
        assert aged.weights[0] > 0.5  # the slow class (rate 0.2) gains weight

    def test_residual_life_grows_with_age(self):
        """DFR: like the paper's Pareto, survival is evidence of slowness."""
        h = Hyperexponential.from_mean_and_cv(1.0, cv=2.5)
        ages = [0.0, 0.5, 2.0, 10.0]
        residuals = [h.mean_residual(a) for a in ages]
        assert all(a < b for a, b in zip(residuals, residuals[1:]))

    def test_residual_life_converges_to_slowest_class(self):
        h = Hyperexponential([0.5, 0.5], [0.2, 5.0])
        assert h.mean_residual(100.0) == pytest.approx(1.0 / 0.2, rel=1e-6)

    @given(age=st.floats(0.0, 20.0), t=st.floats(0.0, 10.0))
    @settings(max_examples=50, deadline=None)
    def test_aging_identity(self, age, t):
        h = Hyperexponential([0.4, 0.6], [0.3, 3.0])
        aged = h.aged(age)
        expected = float(h.sf(age + t)) / float(h.sf(age))
        assert float(aged.sf(t)) == pytest.approx(expected, rel=1e-9)


class TestSolverCompatibility:
    def test_transform_solver_accepts_hyperexponential(self):
        from repro.core import (
            DCSModel,
            ReallocationPolicy,
            TransformSolver,
            ZeroDelayNetwork,
        )

        model = DCSModel(
            service=[Hyperexponential.from_mean_and_cv(1.0, cv=2.0)],
            network=ZeroDelayNetwork(),
        )
        solver = TransformSolver.for_workload(model, [5], dt=0.01, span=8.0)
        value = solver.average_execution_time([5], ReallocationPolicy.none(1))
        assert value == pytest.approx(5.0, rel=0.02)

    def test_theorem1_solver_accepts_hyperexponential(self):
        from repro.core import DCSModel, ReallocationPolicy, Theorem1Solver, ZeroDelayNetwork

        model = DCSModel(
            service=[Hyperexponential.from_mean_and_cv(1.0, cv=2.0)],
            network=ZeroDelayNetwork(),
        )
        solver = Theorem1Solver(model, ds=0.05)
        value = solver.average_execution_time([3], ReallocationPolicy.none(1))
        assert value == pytest.approx(3.0, rel=0.02)
