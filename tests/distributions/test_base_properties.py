"""Generic invariants every distribution family must satisfy.

These are the contracts the solvers rely on: monotone CDFs, correct moments,
consistent sampling, and — above all — the paper's aging identity
``S_a(t) = S(a + t) / S(a)``.
"""

import math

import numpy as np
import pytest
from scipy import integrate

from repro.distributions import Deterministic

from ..conftest import ALL_DISTRIBUTIONS_MEAN2, ALL_FAMILIES_MEAN2, make_rng

IDS = [f"{type(d).__name__}-{i}" for i, d in enumerate(ALL_DISTRIBUTIONS_MEAN2)]
CONT_IDS = [f"{type(d).__name__}-{i}" for i, d in enumerate(ALL_FAMILIES_MEAN2)]


@pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS_MEAN2, ids=IDS)
class TestCdfContract:
    def test_cdf_monotone(self, dist):
        xs = np.linspace(0.0, 30.0, 400)
        cdf = np.asarray(dist.cdf(xs))
        assert np.all(np.diff(cdf) >= -1e-12)

    def test_cdf_bounds(self, dist):
        xs = np.linspace(0.0, 50.0, 200)
        cdf = np.asarray(dist.cdf(xs))
        assert np.all((cdf >= 0.0) & (cdf <= 1.0))

    def test_cdf_zero_below_support(self, dist):
        lo, _ = dist.support()
        if lo > 0:
            assert float(dist.cdf(lo * 0.5)) == 0.0
        assert float(dist.cdf(-1.0)) == 0.0

    def test_sf_complements_cdf(self, dist):
        xs = np.linspace(0.0, 25.0, 100)
        np.testing.assert_allclose(
            np.asarray(dist.sf(xs)) + np.asarray(dist.cdf(xs)), 1.0, atol=1e-12
        )

    def test_cdf_reaches_one(self, dist):
        _, hi = dist.support()
        probe = hi if math.isfinite(hi) else 2.0 * float(dist.quantile(1.0 - 1e-9))
        assert float(dist.cdf(probe)) > 1.0 - 1e-6


@pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS_MEAN2, ids=IDS)
class TestMoments:
    def test_mean_is_two(self, dist):
        assert dist.mean() == pytest.approx(2.0, rel=1e-12)

    def test_mean_matches_survival_integral(self, dist):
        _, hi = dist.support()
        upper = hi if math.isfinite(hi) else np.inf
        val, _ = integrate.quad(lambda t: float(dist.sf(t)), 0.0, upper, limit=500)
        assert val == pytest.approx(dist.mean(), rel=1e-6)

    def test_variance_nonnegative(self, dist):
        assert dist.var() >= 0.0

    def test_std_consistent(self, dist):
        v = dist.var()
        if math.isfinite(v):
            assert dist.std() == pytest.approx(math.sqrt(v))
        else:
            assert math.isinf(dist.std())


@pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS_MEAN2, ids=IDS)
class TestSampling:
    def test_sample_scalar_and_shape(self, dist):
        rng = make_rng(1)
        single = dist.sample(rng)
        assert np.ndim(single) == 0
        batch = dist.sample(rng, size=(3, 5))
        assert np.shape(batch) == (3, 5)

    def test_samples_in_support(self, dist):
        rng = make_rng(2)
        lo, hi = dist.support()
        xs = np.asarray(dist.sample(rng, 5000))
        assert np.all(xs >= lo - 1e-12)
        assert np.all(xs <= hi + 1e-12)

    def test_empirical_mean(self, dist):
        rng = make_rng(3)
        xs = np.asarray(dist.sample(rng, 60_000), dtype=float)
        tol = 0.25 if not math.isfinite(dist.var()) else 0.05
        assert float(xs.mean()) == pytest.approx(2.0, rel=tol)

    def test_empirical_cdf_matches(self, dist):
        """Kolmogorov-style check at fixed probe points."""
        rng = make_rng(4)
        xs = np.asarray(dist.sample(rng, 40_000), dtype=float)
        for probe in (0.5, 1.0, 2.0, 4.0):
            expected = float(dist.cdf(probe))
            # atoms make <= vs < matter: skip probes at an atom
            if isinstance(dist, Deterministic) and probe == dist.value:
                continue
            observed = float(np.mean(xs <= probe))
            assert observed == pytest.approx(expected, abs=0.02)


@pytest.mark.parametrize("dist", ALL_FAMILIES_MEAN2, ids=CONT_IDS)
class TestPdf:
    def test_pdf_nonnegative(self, dist):
        xs = np.linspace(0.0, 30.0, 500)
        assert np.all(np.asarray(dist.pdf(xs)) >= 0.0)

    def test_pdf_integrates_to_one(self, dist):
        lo, hi = dist.support()
        upper = hi if math.isfinite(hi) else np.inf
        val, _ = integrate.quad(
            lambda t: float(dist.pdf(t)), lo, upper, limit=500
        )
        assert val == pytest.approx(1.0, rel=1e-6)

    def test_pdf_differentiates_cdf(self, dist):
        lo, hi = dist.support()
        hi_probe = hi if math.isfinite(hi) else 8.0
        xs = np.linspace(lo + 0.05, hi_probe - 0.05, 20)
        h = 1e-5
        num = (np.asarray(dist.cdf(xs + h)) - np.asarray(dist.cdf(xs - h))) / (2 * h)
        np.testing.assert_allclose(np.asarray(dist.pdf(xs)), num, rtol=1e-3, atol=1e-6)

    def test_hazard_is_pdf_over_sf(self, dist):
        lo, _ = dist.support()
        xs = np.array([lo + 0.1, lo + 1.0, lo + 2.0])
        expected = np.asarray(dist.pdf(xs)) / np.asarray(dist.sf(xs))
        np.testing.assert_allclose(np.asarray(dist.hazard(xs)), expected, rtol=1e-9)


@pytest.mark.parametrize("dist", ALL_FAMILIES_MEAN2, ids=CONT_IDS)
class TestQuantile:
    def test_quantile_inverts_cdf(self, dist):
        for q in (0.05, 0.25, 0.5, 0.75, 0.95, 0.999):
            x = float(dist.quantile(q))
            assert float(dist.cdf(x)) == pytest.approx(q, abs=1e-6)

    def test_quantile_vectorized(self, dist):
        qs = np.array([0.1, 0.5, 0.9])
        xs = np.asarray(dist.quantile(qs))
        assert xs.shape == (3,)
        assert np.all(np.diff(xs) >= 0.0)

    def test_quantile_rejects_bad_levels(self, dist):
        with pytest.raises(ValueError):
            dist.quantile(-0.1)
        with pytest.raises(ValueError):
            dist.quantile(1.5)

    def test_median_matches_quantile(self, dist):
        assert dist.median() == pytest.approx(float(dist.quantile(0.5)))


@pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS_MEAN2, ids=IDS)
class TestAging:
    """The paper's Sec. II-B.1 semantics of the auxiliary age variables."""

    AGE = 0.7

    def test_aged_survival_identity(self, dist):
        aged = dist.aged(self.AGE)
        for t in (0.1, 0.6, 1.4, 3.0):
            expected = float(dist.sf(self.AGE + t)) / float(dist.sf(self.AGE))
            assert float(aged.sf(t)) == pytest.approx(expected, abs=1e-12)

    def test_age_zero_is_identity(self, dist):
        assert dist.aged(0.0) is dist

    def test_negative_age_rejected(self, dist):
        with pytest.raises(ValueError):
            dist.aged(-0.5)

    def test_mean_residual_matches_aged_mean(self, dist):
        aged = dist.aged(self.AGE)
        assert aged.mean() == pytest.approx(dist.mean_residual(self.AGE), rel=1e-6)

    def test_aging_composes(self, dist):
        """Aging twice equals aging once by the sum."""
        a1 = dist.aged(0.4)
        a2 = a1.aged(0.3)
        direct = dist.aged(0.7)
        for t in (0.2, 1.0, 2.5):
            assert float(a2.sf(t)) == pytest.approx(float(direct.sf(t)), abs=1e-10)

    def test_aged_samples_follow_aged_law(self, dist):
        rng = make_rng(5)
        aged = dist.aged(self.AGE)
        xs = np.asarray(aged.sample(rng, 30_000), dtype=float)
        assert np.all(xs >= -1e-9)
        for probe in (0.5, 1.5, 3.0):
            if isinstance(dist, Deterministic):
                continue
            assert float(np.mean(xs <= probe)) == pytest.approx(
                float(aged.cdf(probe)), abs=0.02
            )
