"""Preplanned FFT workspaces: arena reuse, spectrum caching, memoized sizes."""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import fft as sfft

from repro.distributions import spectral
from repro.distributions.workspace import (
    FFTWorkspace,
    get_workspace,
    reset_workspaces,
    workspace_stats,
)


class TestArena:
    def test_rfft_matches_scipy_for_1d_and_2d(self, rng):
        ws = FFTWorkspace(32)
        x1 = rng.random(10)
        x2 = rng.random((4, 13))
        # reference transforms straight through scipy, on purpose
        np.testing.assert_allclose(
            ws.rfft(x1), sfft.rfft(x1, 32), atol=1e-15  # repro-lint: disable=RL002
        )
        np.testing.assert_allclose(
            ws.rfft(x2), sfft.rfft(x2, 32, axis=-1), atol=1e-15  # repro-lint: disable=RL002
        )

    def test_arena_is_reused_between_calls(self, rng):
        ws = FFTWorkspace(64)
        ws.rfft(rng.random((3, 20)))
        allocs = ws.arena_allocations
        ws.rfft(rng.random((3, 20)))
        ws.rfft(rng.random((2, 31)))
        assert ws.arena_allocations == allocs
        assert ws.arena_reuses >= 2

    def test_narrow_call_after_wide_call_sees_clean_pad(self, rng):
        ws = FFTWorkspace(32)
        wide = rng.random(20)
        narrow = rng.random(5)
        ws.rfft(wide)  # leaves payload in columns 5..20 of the arena
        got = ws.rfft(narrow)
        np.testing.assert_allclose(
            got, sfft.rfft(narrow, 32), atol=1e-15  # repro-lint: disable=RL002
        )

    def test_separate_arenas_per_dtype(self, rng):
        ws = FFTWorkspace(32)
        a64 = ws.rfft(rng.random(8))
        a32 = ws.rfft(rng.random(8).astype(np.float32))
        assert a64.dtype == np.complex128
        assert a32.dtype == np.complex64

    def test_irfft_trunc_round_trip(self, rng):
        ws = FFTWorkspace(32)
        x = rng.random(12)
        back = ws.irfft_trunc(ws.rfft(x), 12)
        np.testing.assert_allclose(back, x, atol=1e-14)

    def test_oversize_rows_rejected(self, rng):
        ws = FFTWorkspace(16)
        with pytest.raises(ValueError, match="exceed"):
            ws.rfft(rng.random(17))

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            FFTWorkspace(0)
        with pytest.raises(ValueError):
            FFTWorkspace(16, max_spectra=0)


class TestSpectrumCache:
    def test_cached_spectrum_hit_returns_same_object(self, rng):
        ws = FFTWorkspace(32)
        y = rng.random(10)
        first = ws.cached_spectrum(("y", 0), y)
        second = ws.cached_spectrum(("y", 0), y)
        assert first is second
        assert not first.flags.writeable
        assert ws.spectrum_hits == 1 and ws.spectrum_misses == 1

    def test_lru_eviction_bounds_the_cache(self, rng):
        ws = FFTWorkspace(32, max_spectra=2)
        for k in range(4):
            ws.cached_spectrum(("y", k), rng.random(8))
        assert ws.stats()["spectra"] == 2

    def test_float32_vector_yields_complex64_spectrum(self, rng):
        ws = FFTWorkspace(32)
        spec = ws.cached_spectrum(("y32",), rng.random(8).astype(np.float32))
        assert spec.dtype == np.complex64


class TestConcurrency:
    def test_concurrent_mixed_width_rffts_do_not_corrupt(self, rng):
        """Regression: the zero-pad restore and ``fill`` update used to
        run outside the arena lock, so a narrow transform in one thread
        could zero a concurrent wide transform's payload mid-flight."""
        ws = FFTWorkspace(64)
        widths = [64, 5, 40, 11, 23]
        inputs = {w: rng.random((2, w)) for w in widths}
        expected = {
            w: sfft.rfft(inputs[w], 64, axis=-1)  # repro-lint: disable=RL002
            for w in widths
        }
        failures = []
        gate = threading.Barrier(len(widths))

        def worker(w):
            gate.wait()
            for _ in range(60):
                got = ws.rfft(inputs[w])
                if not np.allclose(got, expected[w], atol=1e-12):
                    failures.append(w)
                    return

        threads = [
            threading.Thread(target=worker, args=(w,)) for w in widths
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert failures == []


class TestSpectrumStaleness:
    @given(
        max_spectra=st.integers(1, 6),
        churn=st.integers(1, 12),
        width=st.integers(1, 16),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_lru_eviction_cannot_hand_out_a_stale_view(
        self, max_spectra, churn, width, seed
    ):
        """A spectrum obtained before arbitrary cache churn and arena
        reuse must keep its values: eviction frees the slot, never the
        array a caller already holds, and the array must not alias the
        reusable transform arena."""
        local = np.random.default_rng(seed)
        ws = FFTWorkspace(32, max_spectra=max_spectra)
        pinned = ws.cached_spectrum(("pinned",), local.random(width))
        snapshot = pinned.copy()
        for k in range(churn):
            ws.cached_spectrum(("churn", k), local.random(width))
            ws.rfft(local.random((3, width)))  # rewrite the arenas hard
        np.testing.assert_array_equal(pinned, snapshot)
        assert not pinned.flags.writeable


class TestRegistry:
    def test_get_workspace_is_a_singleton_per_length(self):
        reset_workspaces()
        a = get_workspace(48)
        b = get_workspace(48)
        c = get_workspace(64)
        assert a is b and a is not c
        assert set(workspace_stats()) >= {48, 64}
        reset_workspaces()
        assert workspace_stats() == {}


class TestFftLengthMemo:
    def test_fft_length_is_memoized(self):
        spectral.fft_length_cache.cache_clear()
        n = 12345
        first = spectral.fft_length(n)
        info0 = spectral.fft_length_cache.cache_info()
        for _ in range(10):
            assert spectral.fft_length(n) == first
        info1 = spectral.fft_length_cache.cache_info()
        assert info1.hits - info0.hits == 10
        assert info1.misses == info0.misses

    def test_fft_length_micro_benchmark(self):
        """The memoized lookup must beat re-running the 5-smooth search.

        Counter-based (no wall clock): the uncached path calls scipy's
        ``next_fast_len`` every time, the memo calls it exactly once per
        distinct ``n`` — asserted through the cache counters.
        """
        spectral.fft_length_cache.cache_clear()
        ns = [1000, 2000, 3000] * 50
        for n in ns:
            spectral.fft_length(n)
        info = spectral.fft_length_cache.cache_info()
        assert info.misses == 3  # one search per distinct grid size
        assert info.hits == len(ns) - 3

    def test_values_agree_with_scipy(self):
        for n in (1, 2, 7, 100, 4097):
            expect = sfft.next_fast_len(2 * n - 1, real=True)  # repro-lint: disable=RL002
            assert spectral.fft_length(n) == expect
