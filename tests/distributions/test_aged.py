"""The generic AgedDistribution wrapper (paper Sec. II-B.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import (
    AgedDistribution,
    ShiftedGamma,
    SupportError,
    Uniform,
    Weibull,
)


@pytest.fixture
def base():
    return ShiftedGamma(2.0, 0.8, 0.5)


class TestConstruction:
    def test_wraps_base(self, base):
        aged = AgedDistribution(base, 1.0)
        assert aged.base is base
        assert aged.age == 1.0

    def test_flattens_nested_aging(self, base):
        inner = AgedDistribution(base, 0.6)
        outer = AgedDistribution(inner, 0.9)
        assert outer.base is base
        assert outer.age == pytest.approx(1.5)

    def test_rejects_negative_age(self, base):
        with pytest.raises(ValueError):
            AgedDistribution(base, -0.1)

    def test_rejects_age_past_support(self):
        with pytest.raises(SupportError):
            AgedDistribution(Uniform(0.0, 1.0), 1.5)


class TestLawIdentities:
    def test_pdf_identity(self, base):
        aged = AgedDistribution(base, 1.2)
        sa = float(base.sf(1.2))
        for t in (0.1, 0.7, 2.0):
            assert float(aged.pdf(t)) == pytest.approx(float(base.pdf(t + 1.2)) / sa)

    def test_cdf_starts_at_zero(self, base):
        aged = AgedDistribution(base, 1.2)
        assert float(aged.cdf(0.0)) == pytest.approx(0.0, abs=1e-12)
        assert float(aged.cdf(-1.0)) == 0.0

    def test_support_shifts(self):
        aged = AgedDistribution(Weibull(2.0, 3.0), 1.0)
        lo, hi = aged.support()
        assert lo == 0.0 and np.isinf(hi)
        aged2 = AgedDistribution(Uniform(2.0, 5.0), 1.0)
        assert aged2.support() == (1.0, 4.0)

    @given(age=st.floats(0.05, 3.0), t=st.floats(0.0, 5.0))
    @settings(max_examples=60, deadline=None)
    def test_survival_identity_property(self, age, t):
        base = Weibull(1.8, 2.0)
        aged = AgedDistribution(base, age)
        expected = float(base.sf(age + t)) / float(base.sf(age))
        assert float(aged.sf(t)) == pytest.approx(expected, rel=1e-9)


class TestMomentsAndSampling:
    def test_mean_delegates_to_mean_residual(self, base):
        aged = AgedDistribution(base, 0.9)
        assert aged.mean() == pytest.approx(base.mean_residual(0.9))

    def test_var_by_quadrature_is_sane(self, base):
        aged = AgedDistribution(base, 0.9)
        v = aged.var()
        assert 0.0 < v < base.var() * 5.0

    def test_sampling_matches_cdf(self, base):
        rng = np.random.default_rng(3)
        aged = AgedDistribution(base, 1.0)
        xs = np.asarray(aged.sample(rng, 40_000))
        assert np.all(xs >= -1e-9)
        for probe in (0.3, 1.0, 2.5):
            assert float(np.mean(xs <= probe)) == pytest.approx(
                float(aged.cdf(probe)), abs=0.015
            )

    def test_further_aging_returns_base_conditioning(self, base):
        aged = AgedDistribution(base, 0.5)
        more = aged.aged(0.7)
        # flattened: single conditioning at 1.2 on the original base
        assert isinstance(more, AgedDistribution)
        assert more.base is base
        assert more.age == pytest.approx(1.2)

    def test_mean_residual_consistent(self, base):
        aged = AgedDistribution(base, 0.5)
        assert aged.mean_residual(0.7) == pytest.approx(base.mean_residual(1.2))
