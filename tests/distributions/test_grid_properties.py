"""Property-based tests of the grid algebra (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import (
    Exponential,
    Grid,
    ShiftedExponential,
    Uniform,
    delta,
    from_distribution,
    minimum_of,
)

GRID = Grid(dt=0.02, n=1500)  # horizon 30


def dists():
    """Strategy over light-tailed distributions that fit the test grid."""
    return st.one_of(
        st.floats(0.3, 3.0).map(Exponential.from_mean),
        st.tuples(st.floats(0.0, 2.0), st.floats(0.5, 4.0)).map(
            lambda lohi: Uniform(lohi[0], lohi[0] + lohi[1])
        ),
        st.tuples(st.floats(0.0, 1.5), st.floats(0.5, 3.0)).map(
            lambda p: ShiftedExponential(p[0], 1.0 / p[1])
        ),
    )


@given(d=dists())
@settings(max_examples=40, deadline=None)
def test_mass_conservation(d):
    m = from_distribution(d, GRID)
    assert 0.0 <= m.total <= 1.0 + 1e-12
    assert m.total + m.tail == pytest.approx(1.0, abs=1e-9)


@given(a=dists(), b=dists())
@settings(max_examples=30, deadline=None)
def test_conv_mean_additive(a, b):
    ma, mb = from_distribution(a, GRID), from_distribution(b, GRID)
    s = ma.conv(mb)
    if s.tail < 1e-6:  # only when the sum fits the grid
        assert s.mean() == pytest.approx(a.mean() + b.mean(), rel=0.01, abs=0.02)


@given(a=dists(), b=dists())
@settings(max_examples=30, deadline=None)
def test_conv_total_is_product_of_totals_plus_tail(a, b):
    ma, mb = from_distribution(a, GRID), from_distribution(b, GRID)
    s = ma.conv(mb)
    assert s.total <= ma.total * mb.total + 1e-9


@given(a=dists(), b=dists())
@settings(max_examples=30, deadline=None)
def test_max_min_mean_identity(a, b):
    """E[max] + E[min] = E[A] + E[B] for independent A, B."""
    ma, mb = from_distribution(a, GRID), from_distribution(b, GRID)
    if ma.tail > 1e-6 or mb.tail > 1e-6:
        return
    mx, mn = ma.maximum(mb), minimum_of(ma, mb)
    assert mx.mean() + mn.mean() == pytest.approx(
        a.mean() + b.mean(), rel=0.01, abs=0.03
    )


@given(a=dists(), b=dists())
@settings(max_examples=30, deadline=None)
def test_max_dominates_min(a, b):
    ma, mb = from_distribution(a, GRID), from_distribution(b, GRID)
    mx, mn = ma.maximum(mb), minimum_of(ma, mb)
    assert np.all(mx.cdf() <= mn.cdf() + 1e-9)


@given(d=dists(), t0=st.floats(0.0, 5.0))
@settings(max_examples=30, deadline=None)
def test_shift_preserves_mass_up_to_horizon(d, t0):
    m = from_distribution(d, GRID)
    s = m.shift(t0)
    assert s.total <= m.total + 1e-12


@given(d=dists(), k=st.integers(0, 6))
@settings(max_examples=25, deadline=None)
def test_conv_power_monotone_cdf_ordering(d, k):
    """Adding one more summand stochastically increases the sum."""
    m = from_distribution(d, GRID)
    a = m.conv_power(k)
    b = m.conv_power(k + 1)
    assert np.all(b.cdf() <= a.cdf() + 1e-9)


@given(t=st.floats(0.0, 25.0))
@settings(max_examples=30, deadline=None)
def test_delta_places_unit_mass(t):
    d = delta(GRID, t)
    assert d.total == pytest.approx(1.0, abs=1e-12)
    assert d.mean() == pytest.approx(t, abs=GRID.dt)
