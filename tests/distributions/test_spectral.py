"""The frequency-domain kernel: cached spectra and batched ladders.

Equivalence guarantees the solver relies on: the spectral convolution and
the doubling-round service-sum ladders must agree with the sequential
``fftconvolve`` reference to well below the solver's accuracy budget.
"""

import numpy as np
import pytest

from repro.core.cache import extend_service_ladder
from repro.distributions import Exponential, Pareto, Uniform
from repro.distributions.grid import Grid, GridMass, delta, from_distribution
from repro.distributions.spectral import fft_length

GRID = Grid(dt=0.05, n=400)

LAWS = [
    Exponential.from_mean(1.0),
    Pareto.from_mean(1.0, 2.5),
    Pareto.from_mean(1.0, 1.5),  # heavy tail: lots of escaped mass
    Uniform.from_mean(1.0),
]


def _ids(laws):
    return [type(d).__name__ + f"-{d.mean():g}" for d in laws]


class TestFftLength:
    def test_covers_linear_convolution(self):
        assert GRID.fft_length >= 2 * GRID.n - 1

    def test_five_smooth(self):
        m = fft_length(GRID.n)
        for p in (2, 3, 5):
            while m % p == 0:
                m //= p
        assert m == 1


class TestSpectralConv:
    @pytest.mark.parametrize("dist", LAWS, ids=_ids(LAWS))
    def test_conv_matches_direct(self, dist):
        a = from_distribution(dist, GRID)
        b = from_distribution(Exponential.from_mean(0.7), GRID)
        spec = a.conv(b)
        direct = a.conv_direct(b)
        assert np.abs(spec.mass - direct.mass).max() < 1e-12

    def test_conv_with_delta_is_identity(self):
        a = from_distribution(LAWS[1], GRID)
        out = a.conv(delta(GRID))
        assert np.abs(out.mass - a.mass).max() < 1e-13


class TestLadder:
    @pytest.mark.parametrize("dist", LAWS, ids=_ids(LAWS))
    def test_spectral_ladder_matches_direct(self, dist):
        mass = from_distribution(dist, GRID)
        spec = [delta(GRID)]
        extend_service_ladder(spec, mass, 150, kernel="spectral")
        direct = [delta(GRID)]
        extend_service_ladder(direct, mass, 150, kernel="direct")
        worst = max(
            np.abs(s.mass - d.mass).max() for s, d in zip(spec, direct)
        )
        assert worst < 1e-12

    def test_spectral_ladder_matches_conv_power(self):
        mass = from_distribution(LAWS[1], GRID)
        ladder = [delta(GRID)]
        extend_service_ladder(ladder, mass, 40, kernel="spectral")
        for k in (0, 1, 2, 7, 40):
            assert np.abs(ladder[k].mass - mass.conv_power(k).mass).max() < 1e-12

    def test_incremental_extension_matches_one_shot(self):
        mass = from_distribution(LAWS[0], GRID)
        grown = [delta(GRID)]
        for k in (3, 5, 17):
            extend_service_ladder(grown, mass, k, kernel="spectral")
        once = [delta(GRID)]
        extend_service_ladder(once, mass, 17, kernel="spectral")
        for a, b in zip(grown, once):
            assert np.abs(a.mass - b.mass).max() < 1e-12

    def test_rejects_unknown_kernel(self):
        with pytest.raises(ValueError, match="kernel"):
            extend_service_ladder([delta(GRID)], from_distribution(LAWS[0], GRID), 2, kernel="fast")


class TestMemoization:
    def test_cdf_sf_spectrum_cached_and_readonly(self):
        m = from_distribution(LAWS[1], GRID)
        for attr in (m.cdf, m.sf, m.spectrum):
            first = attr()
            assert attr() is first  # memoized, not recomputed
            assert not first.flags.writeable

    def test_cdf_values_unchanged(self):
        m = from_distribution(LAWS[0], GRID)
        np.testing.assert_allclose(
            m.cdf(), np.minimum(np.cumsum(m.mass), 1.0), rtol=0, atol=0
        )

    def test_ladder_entries_carry_cached_spectra(self):
        mass = from_distribution(LAWS[0], GRID)
        ladder = [delta(GRID)]
        extend_service_ladder(ladder, mass, 6, kernel="spectral")
        # spectra attached during the doubling rounds match a fresh transform
        for gm in ladder[2:]:
            cached = gm.spectrum()
            fresh = GridMass(GRID, gm.mass.copy()).spectrum()
            assert np.abs(cached - fresh).max() < 1e-12
