"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import _contracts
from repro.core.system import DCSModel, HomogeneousNetwork
from repro.distributions import (
    Deterministic,
    Exponential,
    Pareto,
    ShiftedExponential,
    ShiftedGamma,
    Uniform,
    Weibull,
)


# runtime invariant contracts are on for the whole suite: any kernel-layer
# mass/CDF/ladder/surface violation fails the offending test immediately
_contracts.set_contracts_enabled(True)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def make_rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)


#: one representative of every continuous family, mean 2.0 (for generic tests)
ALL_FAMILIES_MEAN2 = [
    Exponential.from_mean(2.0),
    Pareto.from_mean(2.0, 2.5),
    Pareto.from_mean(2.0, 1.5),
    ShiftedExponential.from_mean(2.0),
    ShiftedGamma.from_mean(2.0),
    Uniform.from_mean(2.0),
    Weibull.from_mean(2.0),
]

ALL_DISTRIBUTIONS_MEAN2 = ALL_FAMILIES_MEAN2 + [Deterministic(2.0)]


def exp_network(latency: float = 0.2, per_task: float = 1.0, fn_mean: float = 0.2):
    """A small exponential network for Markovian cross-checks."""
    return HomogeneousNetwork(
        Exponential.from_mean, latency=latency, per_task=per_task, fn_mean=fn_mean
    )


def small_exp_model(with_failures: bool = False) -> DCSModel:
    """2 servers, exponential everything — exactly solvable by recursion."""
    failure = None
    if with_failures:
        failure = [Exponential.from_mean(20.0), Exponential.from_mean(10.0)]
    return DCSModel(
        service=[Exponential.from_mean(2.0), Exponential.from_mean(1.0)],
        network=exp_network(),
        failure=failure,
    )
