"""Shared-memory fork_map payloads: zero-copy views, bit-identity across
worker counts, deterministic cleanup (including under chaos injection)."""

import os
import pickle

import numpy as np
import pytest

from repro._parallel import (
    ExecutionPolicy,
    SharedArrays,
    active_shared_segments,
    fork_map,
    parallelism_available,
    publish_arrays,
    set_execution_policy,
    shared_memory_available,
)

needs_fork = pytest.mark.skipif(
    not parallelism_available(), reason="fork start method unavailable"
)


def shm_leftovers():
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return []
    return [f for f in os.listdir("/dev/shm") if f.startswith("repro-shm-")]


@pytest.fixture(autouse=True)
def _no_leaked_segments():
    before = set(shm_leftovers())
    yield
    assert active_shared_segments() == []
    assert set(shm_leftovers()) <= before


class TestSharedArrays:
    def test_views_are_faithful_and_read_only(self, rng):
        arrays = {
            "floats": rng.random((5, 7)),
            "ints": np.arange(12, dtype=np.int64).reshape(3, 4),
            "empty": np.zeros((0, 3)),
        }
        with publish_arrays(arrays) as shared:
            assert sorted(shared.keys()) == ["empty", "floats", "ints"]
            for key, arr in arrays.items():
                view = shared[key]
                assert view.shape == arr.shape and view.dtype == arr.dtype
                np.testing.assert_array_equal(view, arr)
                assert not view.flags.writeable
            assert "floats" in shared and "missing" not in shared

    def test_deterministic_names_and_registry(self, rng):
        handle = publish_arrays({"x": rng.random(4)})
        try:
            assert handle.name.startswith(f"repro-shm-{os.getpid()}-")
            if shared_memory_available():
                assert handle.name in active_shared_segments()
        finally:
            handle.close()
        assert handle.name not in active_shared_segments()

    def test_close_is_idempotent(self, rng):
        handle = publish_arrays({"x": rng.random(4)})
        handle.close()
        handle.close()
        with pytest.raises(ValueError, match="closed"):
            handle["x"]

    def test_pickle_round_trip_reattaches(self, rng):
        data = rng.random((3, 5))
        with publish_arrays({"data": data}) as shared:
            clone = pickle.loads(pickle.dumps(shared))
            assert isinstance(clone, SharedArrays)
            np.testing.assert_array_equal(clone["data"], data)
            clone.close()  # non-owner close must not unlink ...
            np.testing.assert_array_equal(shared["data"], data)  # ... proof


class TestPublishLifecycle:
    def test_failed_publish_does_not_leak_the_segment(self, rng, monkeypatch):
        """Regression: the segment used to be registered for cleanup only
        *after* the copy loop, so an exception mid-copy leaked a segment
        no sweep could see.  Now registration precedes the fill and a
        failed fill closes (and unlinks) the segment on the way out."""
        if not shared_memory_available():
            pytest.skip("no platform shared memory on this host")
        import types

        import repro._parallel as par

        def boom(*args, **kwargs):
            raise RuntimeError("copy failed")

        monkeypatch.setattr(
            par,
            "np",
            types.SimpleNamespace(
                ascontiguousarray=np.ascontiguousarray,
                dtype=np.dtype,
                ndarray=boom,
            ),
        )
        before = set(shm_leftovers())
        with pytest.raises(RuntimeError, match="copy failed"):
            par.publish_arrays({"x": rng.random(8)})
        assert active_shared_segments() == []
        assert set(shm_leftovers()) <= before

    def test_fallback_publish_leaves_callers_array_writable(self, rng, monkeypatch):
        """Regression: without platform shared memory, a contiguous input
        was frozen in place (``ascontiguousarray`` returns its argument
        unchanged), turning the *caller's* array read-only."""
        import repro._parallel as par

        monkeypatch.setattr(par, "_shm", None)
        mine = np.ascontiguousarray(rng.random(16))
        assert mine.flags.writeable
        with par.publish_arrays({"x": mine}) as shared:
            view = shared["x"]
            assert not view.flags.writeable
            np.testing.assert_array_equal(view, mine)
            assert mine.flags.writeable  # a copy was frozen, not ours
            mine[0] += 1.0  # and edits to ours do not reach the snapshot
            assert view[0] != mine[0]


@needs_fork
class TestForkMapIntegration:
    def test_bit_identical_across_jobs(self, rng):
        """A ladder stack plus a cell table published once; every worker
        count must produce byte-identical results."""
        ladder = rng.random((8, 64)).cumsum(axis=1)
        cells = np.array([(i, j) for i in range(8) for j in range(0, 64, 16)])
        with publish_arrays({"ladder": ladder, "cells": cells}) as shared:

            def item(k):
                i, j = shared["cells"][k]
                return float(shared["ladder"][i, j:].sum())

            serial = [item(k) for k in range(len(cells))]
            for jobs in (2, 3):
                fanned = fork_map(item, len(cells), jobs)
                assert fanned == serial  # == on floats: bit-identity

    def test_resilient_path_reads_shared_views(self, rng, tmp_path):
        """Chaos: a worker crash mid-fan-out (future-per-item path) must not
        corrupt results nor leak the published segment."""
        table = rng.random((6, 32))
        previous = set_execution_policy(ExecutionPolicy(timeout=30.0, retries=2))
        os.environ["REPRO_CHAOS"] = "crash:1"
        os.environ["REPRO_CHAOS_DIR"] = str(tmp_path)
        try:
            with publish_arrays({"table": table}) as shared:
                got = fork_map(
                    lambda k: float(shared["table"][k].sum()), 6, 2
                )
        finally:
            set_execution_policy(previous)
            del os.environ["REPRO_CHAOS"], os.environ["REPRO_CHAOS_DIR"]
        assert got == [float(table[k].sum()) for k in range(6)]

    def test_publisher_crash_is_swept_at_exit(self, rng, tmp_path):
        """A process that publishes and dies without closing must leave no
        segment behind (the atexit sweep)."""
        script = tmp_path / "leaker.py"
        script.write_text(
            "import numpy as np\n"
            "from repro._parallel import publish_arrays\n"
            "handle = publish_arrays({'x': np.ones(1000)})\n"
            "print(handle.name)\n"
            "raise SystemExit(0)\n"  # atexit sweep must unlink
        )
        import subprocess
        import sys

        env = dict(os.environ, PYTHONPATH="src")
        out = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            cwd=os.getcwd(),
            env=env,
        )
        assert out.returncode == 0, out.stderr
        name = out.stdout.strip().splitlines()[-1]
        assert name.startswith("repro-shm-")
        assert name not in shm_leftovers()


class TestSweepUsesSharedTables:
    def test_per_cell_sweep_matches_batched(self):
        from repro.core import Metric, TransformSolver, sweep_policies

        from .conftest import small_exp_model

        solver = TransformSolver.for_workload(
            small_exp_model(with_failures=True), [5, 3], dt=0.05, cache=None
        )
        batched = sweep_policies(
            solver, Metric.RELIABILITY, [5, 3], [0, 1, 2], [0, 1, 2]
        )
        jobs = 2 if parallelism_available() else 1
        percell = sweep_policies(
            solver,
            Metric.RELIABILITY,
            [5, 3],
            [0, 1, 2],
            [0, 1, 2],
            batched=False,
            jobs=jobs,
        )
        np.testing.assert_allclose(percell, batched, atol=1e-9)
        assert active_shared_segments() == []
