"""ASCII figure rendering."""

import numpy as np

from repro.analysis import histogram_chart, line_chart, surface_chart


class TestLineChart:
    def test_renders_series_and_legend(self):
        x = np.arange(10)
        out = line_chart(x, {"a": x * 1.0, "b": 9.0 - x}, title="T")
        assert "T" in out
        assert "legend: o a   x b" in out

    def test_handles_nan_values(self):
        x = np.arange(5)
        y = np.array([1.0, np.nan, 3.0, np.inf, 5.0])
        out = line_chart(x, {"a": y})
        assert "legend" in out

    def test_all_nan_graceful(self):
        out = line_chart([0, 1], {"a": [np.nan, np.nan]}, title="X")
        assert "no finite data" in out

    def test_constant_series(self):
        out = line_chart([0, 1, 2], {"a": [2.0, 2.0, 2.0]})
        assert "o" in out

    def test_axis_labels(self):
        out = line_chart([0, 1], {"a": [0, 1]}, xlabel="L12", ylabel="R")
        assert "L12" in out
        assert "[y: R]" in out


class TestHistogramChart:
    def test_bars_scale_with_density(self):
        edges = np.array([0.0, 1.0, 2.0])
        out = histogram_chart(edges, [0.5, 1.0], title="H")
        lines = out.splitlines()
        assert "H" == lines[0]
        assert lines[2].count("█") > lines[1].count("█")

    def test_overlay_markers_present(self):
        edges = np.linspace(0, 5, 6)
        dens = np.array([0.1, 0.4, 0.3, 0.15, 0.05])
        out = histogram_chart(edges, dens, overlay={"fit": dens * 0.9})
        assert "overlay: o fit" in out

    def test_zero_density_handled(self):
        edges = np.array([0.0, 1.0])
        out = histogram_chart(edges, [0.0])
        assert "|" in out


class TestSurfaceChart:
    def test_marks_best_cell(self):
        vals = np.array([[3.0, 2.0], [1.0, 4.0]])
        out = surface_chart(vals, [0, 10], [0, 5], best="min")
        assert "X" in out
        assert "(L12=10, L21=0)" in out

    def test_max_mode(self):
        vals = np.array([[0.1, 0.9], [0.5, 0.2]])
        out = surface_chart(vals, [0, 1], [0, 1], best="max")
        assert "(L12=0, L21=1)" in out

    def test_nan_cells_rendered_as_question(self):
        vals = np.array([[1.0, np.nan], [2.0, 3.0]])
        out = surface_chart(vals, [0, 1], [0, 1])
        assert "?" in out

    def test_all_nan_graceful(self):
        vals = np.full((2, 2), np.nan)
        assert "no finite data" in surface_chart(vals, [0, 1], [0, 1], title="S")
