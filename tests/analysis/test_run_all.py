"""The run-all report harness (subset smoke at tiny scale)."""


import pytest

import repro.analysis.run_all as run_all_mod
from repro.analysis.run_all import main

from .test_harness import TINY


@pytest.fixture
def tiny_scale(monkeypatch):
    monkeypatch.setattr(run_all_mod, "current_scale", lambda: TINY)
    # figure functions read the scale via their argument, which run_all passes
    return TINY


class TestRunAll:
    def test_fig1_subset(self, tiny_scale, capsys):
        code = main(["--only", "fig1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Fig. 1 (low)" in out
        assert "Fig. 1 (severe)" in out
        assert "max relative error" in out

    def test_fig3_and_table1(self, tiny_scale, capsys):
        code = main(["--only", "fig3", "table1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Fig. 3(a)" in out
        assert "Table I" in out
        assert "paper: 140.11s" in out

    def test_output_file(self, tiny_scale, capsys, tmp_path):
        target = tmp_path / "report.md"
        code = main(["--only", "fig1", "--out", str(target)])
        assert code == 0
        text = target.read_text()
        assert "# Experiment harness" in text
        assert "Fig. 1" in text

    def test_rejects_unknown_experiment(self, tiny_scale):
        with pytest.raises(SystemExit):
            main(["--only", "fig9"])
