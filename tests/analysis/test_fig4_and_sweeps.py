"""Fig. 4 pipeline and the QoS-deadline sweep, at miniature scale."""

import numpy as np
import pytest

from repro.analysis import qos_deadline_sweep
from repro.analysis.figures import fig4_data
from repro.core import ReallocationPolicy

from .test_harness import TINY


class TestFig4Pipeline:
    @pytest.fixture(scope="class")
    def data(self):
        rng = np.random.default_rng(77)
        return fig4_data(
            rng,
            n_characterization_samples=800,
            scale=TINY,
            reality_perturbation=0.02,
        )

    def test_reliability_curves_are_probabilities(self, data):
        for series in (data.theory, data.simulation, data.experiment):
            assert np.all((series >= 0.0) & (series <= 1.0))

    def test_theory_tracks_simulation(self, data):
        """Same model underneath: gaps are MC noise only."""
        gap = np.max(np.abs(data.theory - data.simulation))
        assert gap < 0.25  # TINY scale has very few replications

    def test_ci_arrays_bracket_estimates(self, data):
        assert np.all(data.simulation_ci[:, 0] <= data.simulation + 1e-9)
        assert np.all(data.simulation + 1e-9 >= data.simulation_ci[:, 0])
        assert np.all(data.experiment_ci[:, 1] >= data.experiment - 1e-9)

    def test_optimum_recorded(self, data):
        assert 0 <= data.optimal_l12 <= 50
        assert 0.0 <= data.optimal_reliability <= 1.0
        assert 0.0 <= data.no_reallocation_reliability <= 1.0

    def test_characterization_attached(self, data):
        assert len(data.characterization.service) == 2
        assert data.fitted_model.n == 2


class TestQosDeadlineSweep:
    def test_curve_is_a_cdf(self):
        deadlines, qos, mean_time = qos_deadline_sweep(
            policy=ReallocationPolicy.two_server(30, 0), scale=TINY
        )
        assert np.all(np.diff(qos) >= -1e-12)
        assert np.all((qos >= 0.0) & (qos <= 1.0))
        assert deadlines[0] < mean_time < deadlines[-1]

    def test_custom_deadlines_respected(self):
        custom = np.array([50.0, 150.0, 400.0])
        deadlines, qos, _ = qos_deadline_sweep(
            policy=ReallocationPolicy.two_server(30, 0),
            deadlines=custom,
            scale=TINY,
        )
        np.testing.assert_array_equal(deadlines, custom)
        assert qos.shape == (3,)
