"""ResilienceCampaign: structure, fault-free limit, checkpoint/resume."""

import math

import numpy as np
import pytest

from repro._checkpoint import CheckpointStore
from repro._parallel import parallelism_available
from repro.analysis.resilience import ResilienceCampaign
from repro.core import ReallocationPolicy
from repro.faults import FaultPlan

from ..conftest import small_exp_model

POLICIES = [
    ("baseline", ReallocationPolicy.none(2)),
    ("optimal", ReallocationPolicy.two_server(2, 1)),
]


def make_campaign(**overrides):
    kwargs = dict(
        model=small_exp_model(),
        loads=[5, 3],
        policies=POLICIES,
        plan=FaultPlan.standard(seed=5),
        deadline=60.0,
        n_reps=24,
        seed=17,
    )
    kwargs.update(overrides)
    return ResilienceCampaign(**kwargs)


class TestValidation:
    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="deadline"):
            make_campaign(deadline=0.0)
        with pytest.raises(ValueError, match="replication"):
            make_campaign(n_reps=0)
        with pytest.raises(ValueError, match="policy"):
            make_campaign(policies=[])
        with pytest.raises(ValueError, match="unique"):
            make_campaign(policies=[POLICIES[0], POLICIES[0]])

    def test_rejects_empty_intensity_grid(self):
        with pytest.raises(ValueError, match="intensity"):
            make_campaign().run([])


class TestReportStructure:
    def test_one_cell_per_intensity_policy_pair(self):
        report = make_campaign().run([0.0, 0.5])
        assert len(report.cells) == 4
        assert report.policies == ["baseline", "optimal"]
        assert report.intensities == [0.0, 0.5]
        for cell in report.cells:
            assert cell.n_completed + cell.n_failed + cell.n_censored == cell.n_reps
            assert 0.0 <= cell.r_tm <= cell.r_inf <= 1.0

    def test_series_extracts_one_policy(self):
        report = make_campaign().run([0.0, 1.0])
        series = report.series("optimal")
        assert series["intensity"] == [0.0, 1.0]
        assert len(series["r_tm"]) == 2
        with pytest.raises(KeyError):
            report.series("unknown")

    def test_to_dict_is_json_ready(self):
        import json

        report = make_campaign().run([0.0])
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["plan"]["type"] == "FaultPlan"
        assert len(payload["cells"]) == 2


class TestFaultFreeLimit:
    def test_zero_intensity_on_a_reliable_model_always_completes(self):
        report = make_campaign().run([0.0])
        for cell in report.cells:
            assert cell.r_inf == 1.0
            assert cell.n_failed == 0
            assert not math.isnan(cell.mean_completion)

    def test_faults_degrade_the_transferring_policy(self):
        # with certain group loss, every transferring run fails while the
        # baseline (nothing on the wire) is untouched
        campaign = make_campaign(plan=FaultPlan(group_loss=1.0))
        report = campaign.run([1.0])
        by_policy = {c.policy: c for c in report.cells}
        assert by_policy["baseline"].r_inf == 1.0
        assert by_policy["optimal"].r_inf == 0.0
        assert by_policy["optimal"].n_failed == campaign.n_reps


class TestDeterminism:
    def test_repeat_runs_are_identical(self):
        a = make_campaign().run([0.0, 1.0]).to_dict()
        b = make_campaign().run([0.0, 1.0]).to_dict()
        assert a == b

    @pytest.mark.skipif(not parallelism_available(), reason="needs fork")
    def test_jobs_do_not_change_numbers(self):
        serial = make_campaign(n_reps=96, jobs=1).run([1.0]).to_dict()
        fanned = make_campaign(n_reps=96, jobs=2).run([1.0]).to_dict()
        assert serial == fanned


class TestCheckpointResume:
    def test_key_tracks_campaign_inputs(self):
        base = make_campaign().checkpoint_key([0.0, 1.0])
        assert make_campaign().checkpoint_key([0.0, 1.0]) == base
        assert make_campaign(seed=18).checkpoint_key([0.0, 1.0]) != base
        assert make_campaign(n_reps=25).checkpoint_key([0.0, 1.0]) != base
        assert make_campaign().checkpoint_key([0.0]) != base

    def test_full_checkpointed_run_matches_plain_run(self, tmp_path):
        campaign = make_campaign()
        intensities = [0.0, 1.0]
        reference = campaign.run(intensities).to_dict()
        store = CheckpointStore(
            str(tmp_path / "c.ckpt"), campaign.checkpoint_key(intensities)
        )
        checkpointed = campaign.run(intensities, checkpoint=store).to_dict()
        assert checkpointed == reference
        assert len(store) == 4

    def test_interrupted_campaign_resumes_to_identical_results(self, tmp_path):
        campaign = make_campaign()
        intensities = [0.0, 0.5, 1.0]
        key = campaign.checkpoint_key(intensities)
        reference = campaign.run(intensities).to_dict()

        # full run recorded to one store ...
        done = CheckpointStore(str(tmp_path / "full.ckpt"), key)
        campaign.run(intensities, checkpoint=done)
        # ... emulate a mid-run kill: only the first 2 of 6 cells survived
        partial_path = str(tmp_path / "partial.ckpt")
        partial = CheckpointStore(partial_path, key)
        for label in done.labels[:2]:
            partial.put(label, done.get(label))

        resumed_store = CheckpointStore(partial_path, key, resume=True)
        assert len(resumed_store) == 2
        resumed = campaign.run(intensities, checkpoint=resumed_store).to_dict()
        assert resumed == reference
        assert len(resumed_store) == 6

    def test_stale_checkpoint_from_other_inputs_is_recomputed(self, tmp_path):
        campaign = make_campaign()
        path = str(tmp_path / "c.ckpt")
        # a checkpoint written under a different key must not be resumed
        CheckpointStore(path, "other-key").put("cell:0:baseline", {"values": [0.0]})
        store = CheckpointStore(path, campaign.checkpoint_key([0.0]), resume=True)
        report = campaign.run([0.0], checkpoint=store)
        assert report.cells[0].n_reps == campaign.n_reps
