"""Experiment harness: config, figure/table functions at miniature scale."""

import numpy as np
import pytest

from repro.analysis import (
    ExperimentScale,
    current_scale,
    fig1_series,
    fig2_series,
    fig3_surfaces,
    format_table1,
    table1_rows,
)
from repro.analysis.figures import fitted_model_from_characterization

#: a miniature scale so harness tests run in seconds
TINY = ExperimentScale(
    name="tiny",
    sweep_step=25,
    optimize_step=25,
    solver_dt=0.25,
    mc_reps=40,
    mc_reps_fig4=60,
    experiment_runs=40,
    mc_search_candidates=2,
    algorithm1_k=2,
)


class TestConfig:
    def test_default_is_fast(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert current_scale().name == "fast"

    def test_full_profile(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "full")
        scale = current_scale()
        assert scale.name == "full"
        assert scale.mc_reps_fig4 == 10000  # the paper's Fig. 4(c) count

    def test_unknown_profile_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "huge")
        with pytest.raises(ValueError):
            current_scale()


class TestFig12:
    def test_fig1_structure(self):
        data = fig1_series("low", families=("exponential", "uniform"), scale=TINY)
        assert set(data.sweeps) == {"exponential", "uniform"}
        assert data.max_relative_error["exponential"] < 1e-9
        for sweep in data.sweeps.values():
            assert sweep.values.shape == data.l12_values.shape
            assert np.all(sweep.values > 0)

    def test_fig2_values_are_probabilities(self):
        data = fig2_series("severe", families=("exponential", "uniform"), scale=TINY)
        for sweep in data.sweeps.values():
            assert np.all((sweep.values >= 0) & (sweep.values <= 1))


class TestFig3:
    def test_surfaces_and_headline_numbers(self):
        data = fig3_surfaces(scale=TINY)
        assert data.avg_time.shape == (
            data.l12_values.size,
            data.l21_values.size,
        )
        assert np.isfinite(data.avg_time).all()
        assert 0.0 <= data.best_qos_value <= 1.0
        assert data.best_time_policy[0] in data.l12_values
        assert (data.best_time_policy[0], data.best_time_policy[1]) in [
            (int(a), int(b))
            for a in data.l12_values
            for b in data.l21_values
        ]
        assert 0.0 <= data.qos_at_min_time_deadline <= 1.0


class TestTable1:
    def test_rows_and_formatting(self):
        rows = table1_rows(
            families=("exponential", "uniform"), delays=("severe",), scale=TINY
        )
        assert len(rows) == 2
        exp_row = next(r for r in rows if r.family == "exponential")
        # the Markovian policy IS optimal for the exponential model
        assert exp_row.time_degradation_pct == pytest.approx(0.0, abs=0.5)
        assert exp_row.qos_degradation_pct == pytest.approx(0.0, abs=0.5)
        text = format_table1(rows)
        assert "exponential" in text and "uniform" in text

    def test_optimum_dominates_markov_policy(self):
        rows = table1_rows(families=("pareto2",), delays=("severe",), scale=TINY)
        (row,) = rows
        assert row.time_value <= row.time_value_under_markov_policy + 1e-9
        assert row.qos_value >= row.qos_value_under_markov_policy - 1e-9


class TestFittedModel:
    def test_fitted_model_roundtrip(self, rng):
        from repro.simulation import EmulatedTestbed
        from repro.workloads import testbed_scenario

        nominal = testbed_scenario().model
        tb = EmulatedTestbed(nominal, rng, reality_perturbation=0.0)
        char = tb.characterize(
            1500, rng, families=("pareto", "shifted-gamma", "exponential")
        )
        fitted = fitted_model_from_characterization(char, nominal)
        assert fitted.n == 2
        # recovered means stay close to nominal when reality is unperturbed
        for fit, nom in zip(fitted.service, nominal.service):
            assert fit.mean() == pytest.approx(nom.mean(), rel=0.25)
        z = fitted.network.group_transfer(0, 1, 10)
        nominal_z = nominal.network.group_transfer(0, 1, 10)
        assert z.mean() == pytest.approx(nominal_z.mean(), rel=0.3)
        assert fitted.failure is nominal.failure
