"""Utilization measurement (the paper's resource-efficiency discussion)."""

import numpy as np
import pytest

from repro.analysis.utilization import UtilizationReport, measure_utilization
from repro.core import ReallocationPolicy

from ..conftest import small_exp_model


class TestReport:
    def test_utilization_fractions(self):
        report = UtilizationReport(
            mean_busy_time=np.array([8.0, 4.0]),
            mean_completion_time=10.0,
            n_runs=5,
        )
        np.testing.assert_allclose(report.utilization, [0.8, 0.4])
        assert report.imbalance == pytest.approx(2.0)

    def test_idle_server_infinite_imbalance(self):
        report = UtilizationReport(
            mean_busy_time=np.array([8.0, 0.0]),
            mean_completion_time=10.0,
            n_runs=5,
        )
        assert report.imbalance == np.inf

    def test_empty_system_balanced(self):
        report = UtilizationReport(
            mean_busy_time=np.zeros(2), mean_completion_time=0.0, n_runs=1
        )
        assert report.imbalance == 1.0
        np.testing.assert_allclose(report.utilization, [0.0, 0.0])


class TestMeasurement:
    def test_basic_measurement(self, rng):
        model = small_exp_model()
        report = measure_utilization(
            model, [10, 5], ReallocationPolicy.two_server(3, 0), 50, rng
        )
        assert report.n_runs == 50
        assert report.mean_completion_time > 0
        assert np.all(report.mean_busy_time > 0)
        assert np.all(report.utilization <= 1.0 + 1e-9)

    def test_busy_time_tracks_work_done(self, rng):
        """Expected busy time = tasks x mean service per server."""
        model = small_exp_model()
        report = measure_utilization(
            model, [10, 5], ReallocationPolicy.none(2), 400, rng
        )
        assert report.mean_busy_time[0] == pytest.approx(20.0, rel=0.1)
        assert report.mean_busy_time[1] == pytest.approx(5.0, rel=0.1)

    def test_rejects_failing_model(self, rng):
        model = small_exp_model(with_failures=True)
        with pytest.raises(ValueError):
            measure_utilization(model, [2, 2], ReallocationPolicy.none(2), 5, rng)

    def test_rejects_zero_runs(self, rng):
        with pytest.raises(ValueError):
            measure_utilization(
                small_exp_model(), [2, 2], ReallocationPolicy.none(2), 0, rng
            )
