"""Sensitivity analysis: signs, magnitudes, validation."""


import pytest

from repro.analysis.sensitivity import metric_sensitivities
from repro.core import Metric, ReallocationPolicy

from ..conftest import small_exp_model


def rows_by_name(rows):
    return {r.parameter: r for r in rows}


class TestAvgTimeSensitivity:
    @pytest.fixture(scope="class")
    def rows(self):
        model = small_exp_model()
        return rows_by_name(
            metric_sensitivities(
                model,
                [8, 4],
                ReallocationPolicy.two_server(2, 0),
                Metric.AVG_EXECUTION_TIME,
                dt=0.02,
            )
        )

    def test_slower_service_increases_time(self, rows):
        assert rows["service_mean[0]"].derivative > 0
        assert rows["service_mean[1]"].derivative > 0

    def test_bottleneck_server_dominates(self, rows):
        """Server 1 holds most work: its speed matters more."""
        assert (
            rows["service_mean[0]"].elasticity
            > rows["service_mean[1]"].elasticity
        )

    def test_network_delay_hurts(self, rows):
        assert rows["network_delay_scale"].derivative >= 0

    def test_elasticities_sum_near_one(self, rows):
        """T̄ is (nearly) homogeneous of degree 1 in all time scales."""
        total = sum(r.elasticity for r in rows.values())
        assert total == pytest.approx(1.0, abs=0.1)


class TestReliabilitySensitivity:
    @pytest.fixture(scope="class")
    def rows(self):
        model = small_exp_model(with_failures=True)
        return rows_by_name(
            metric_sensitivities(
                model,
                [8, 4],
                ReallocationPolicy.two_server(2, 0),
                Metric.RELIABILITY,
                dt=0.02,
            )
        )

    def test_longer_mttf_improves_reliability(self, rows):
        assert rows["failure_mean[0]"].derivative > 0
        assert rows["failure_mean[1]"].derivative > 0

    def test_slower_service_hurts_reliability(self, rows):
        assert rows["service_mean[0]"].derivative < 0

    def test_metric_values_stay_probabilities(self, rows):
        for r in rows.values():
            assert 0.0 <= r.metric_minus <= 1.0
            assert 0.0 <= r.metric_plus <= 1.0


class TestValidation:
    def test_qos_needs_deadline(self):
        with pytest.raises(ValueError):
            metric_sensitivities(
                small_exp_model(), [2, 2], ReallocationPolicy.none(2), Metric.QOS
            )

    def test_rejects_bad_step(self):
        with pytest.raises(ValueError):
            metric_sensitivities(
                small_exp_model(),
                [2, 2],
                ReallocationPolicy.none(2),
                Metric.AVG_EXECUTION_TIME,
                rel_step=1.5,
            )

    def test_qos_sensitivity_runs(self):
        rows = metric_sensitivities(
            small_exp_model(),
            [4, 2],
            ReallocationPolicy.none(2),
            Metric.QOS,
            deadline=10.0,
            dt=0.05,
        )
        names = {r.parameter for r in rows}
        assert "service_mean[0]" in names
        assert "network_delay_scale" in names
