"""End-to-end workflows at reduced scale: the paper's pipeline in miniature."""

import numpy as np

from repro.core import (
    Algorithm1,
    MCPolicySearch,
    Metric,
    ReallocationPolicy,
    TransformSolver,
    TwoServerOptimizer,
    markovian_approximation,
)
from repro.simulation import DCSSimulator, estimate_metric
from repro.workloads import five_server_scenario, two_server_scenario


class TestTwoServerPipeline:
    """Scenario -> solver -> optimal policy -> MC validation (Table I flow)."""

    def test_optimize_then_validate(self, rng):
        sc = two_server_scenario("shifted-exponential", delay="severe", with_failures=False)
        loads = [24, 12]  # miniature version of (100, 50)
        solver = TransformSolver.for_workload(sc.model, loads, dt=0.05)
        best = TwoServerOptimizer(solver).optimize(
            Metric.AVG_EXECUTION_TIME, loads, step=3
        )
        mc = estimate_metric(
            Metric.AVG_EXECUTION_TIME, sc.model, loads, best.policy, 800, rng
        )
        assert abs(best.value - mc.value) < 3 * mc.half_width + 0.02 * best.value
        # and the optimum really beats doing nothing
        nothing = solver.average_execution_time(loads, ReallocationPolicy.none(2))
        assert best.value < nothing

    def test_markovian_policy_deployed_on_true_system(self):
        """The Table I degradation computation, miniaturized."""
        sc = two_server_scenario("pareto2", delay="severe", with_failures=False)
        loads = [24, 12]
        solver = TransformSolver.for_workload(sc.model, loads, dt=0.05)
        exp_model = markovian_approximation(sc.model)
        exp_solver = TransformSolver.for_workload(exp_model, loads, dt=0.05)
        best_true = TwoServerOptimizer(solver).optimize(
            Metric.AVG_EXECUTION_TIME, loads, step=3
        )
        best_exp = TwoServerOptimizer(exp_solver).optimize(
            Metric.AVG_EXECUTION_TIME, loads, step=3
        )
        deployed = solver.average_execution_time(loads, best_exp.policy)
        assert deployed >= best_true.value - 1e-9


class TestMultiServerPipeline:
    """Algorithm 1 -> MC evaluation -> MC-search benchmark (Table II flow)."""

    def test_algorithm1_beats_nothing_and_tracks_benchmark(self, rng):
        sc = five_server_scenario("shifted-exponential", with_failures=False)
        loads = [25, 12, 6, 4, 3]  # miniature of the 200-task workload
        algo = Algorithm1(sc.model, Metric.AVG_EXECUTION_TIME, dt=0.2, max_iterations=4)
        res = algo.run(loads)
        mc_algo = estimate_metric(
            Metric.AVG_EXECUTION_TIME, sc.model, loads, res.policy, 300, rng
        )
        mc_nothing = estimate_metric(
            Metric.AVG_EXECUTION_TIME,
            sc.model,
            loads,
            ReallocationPolicy.none(5),
            300,
            rng,
        )
        assert mc_algo.value < mc_nothing.value
        search = MCPolicySearch(sc.model, Metric.AVG_EXECUTION_TIME, n_reps=60)
        bench = search.search(loads, rng, n_random=4, step_sizes=(4, 2))
        # Algorithm 1 should land within a modest factor of the MC benchmark
        assert mc_algo.value <= 1.8 * bench.value + 1.0

    def test_reliability_pipeline(self, rng):
        sc = five_server_scenario("exponential", with_failures=True)
        loads = [25, 12, 6, 4, 3]
        algo = Algorithm1(
            sc.model, Metric.RELIABILITY, dt=0.2, max_iterations=3
        )
        res = algo.run(loads, criterion="reliability")
        mc = estimate_metric(Metric.RELIABILITY, sc.model, loads, res.policy, 300, rng)
        assert 0.0 <= mc.value <= 1.0


class TestSimulatorStatistics:
    def test_utilization_story_low_delay(self, rng):
        """The paper's resource-usage discussion: optimal low-delay policies
        keep both servers busy for comparable times."""
        sc = two_server_scenario("exponential", delay="low", with_failures=False)
        loads = [20, 10]
        solver = TransformSolver.for_workload(sc.model, loads, dt=0.05)
        best = TwoServerOptimizer(solver).optimize(
            Metric.AVG_EXECUTION_TIME, loads, step=2
        )
        sim = DCSSimulator(sc.model)
        busy = np.zeros(2)
        for _ in range(150):
            result = sim.run(loads, best.policy, rng)
            busy += result.busy_time
        ratio = busy[0] / busy[1]
        assert 0.6 < ratio < 1.7
