"""Example scripts: the quickstart runs end-to-end; all examples compile."""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def test_examples_directory_has_required_scripts():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert "quickstart.py" in names
    assert len(names) >= 3


@pytest.mark.parametrize("script", sorted(EXAMPLES.glob("*.py")), ids=lambda p: p.name)
def test_examples_compile(script):
    py_compile.compile(str(script), doraise=True)


def test_quickstart_runs():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    assert "optimal for T̄" in result.stdout
    assert "MC check" in result.stdout
