"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_metrics_defaults(self):
        args = build_parser().parse_args(["metrics"])
        assert args.scenario == "two-server"
        assert args.family == "pareto1"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_metrics_reliable(self, capsys):
        code = main(
            [
                "metrics",
                "--family",
                "uniform",
                "--delay",
                "low",
                "--reliable",
                "--l12",
                "10",
                "--deadline",
                "120",
                "--dt",
                "0.2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "average execution time:" in out
        assert "QoS within 120 s" in out

    def test_metrics_with_failures_reports_reliability(self, capsys):
        code = main(
            ["metrics", "--family", "exponential", "--l12", "20", "--dt", "0.2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "service reliability:" in out

    def test_optimize(self, capsys):
        code = main(
            [
                "optimize",
                "--family",
                "uniform",
                "--delay",
                "severe",
                "--reliable",
                "--metric",
                "avg_execution_time",
                "--step",
                "25",
                "--dt",
                "0.25",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "optimal policy: L12=" in out

    def test_optimize_avg_time_needs_reliable(self):
        with pytest.raises(SystemExit):
            main(["optimize", "--metric", "avg_execution_time"])

    def test_optimize_rejects_five_server(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "optimize",
                    "--scenario",
                    "five-server",
                    "--reliable",
                    "--metric",
                    "avg_execution_time",
                ]
            )

    def test_algorithm1(self, capsys):
        code = main(
            [
                "algorithm1",
                "--scenario",
                "five-server",
                "--family",
                "exponential",
                "--reliable",
                "--iterations",
                "2",
                "--dt",
                "0.5",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "seed policy (eq. 5):" in out
        assert "policy:" in out

    def test_simulate(self, capsys):
        code = main(
            [
                "simulate",
                "--family",
                "exponential",
                "--metric",
                "reliability",
                "--l12",
                "20",
                "--reps",
                "50",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "estimate:" in out

    def test_simulate_multi_server_policy_string(self, capsys):
        code = main(
            [
                "simulate",
                "--scenario",
                "five-server",
                "--family",
                "exponential",
                "--reliable",
                "--metric",
                "avg_execution_time",
                "--policy",
                "0,0,0,0,50;0,0,0,0,10;0,0,0,0,0;0,0,0,0,0;0,0,0,0,0",
                "--reps",
                "30",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "estimate:" in out

    def test_policy_string_shape_checked(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "simulate",
                    "--scenario",
                    "five-server",
                    "--reliable",
                    "--policy",
                    "0,0;0,0",
                    "--reps",
                    "5",
                ]
            )
