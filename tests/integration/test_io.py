"""JSON serialization round-trips."""

import json
import math

import pytest

from repro.core import (
    MCEstimate,
    Metric,
    ReallocationPolicy,
    TransformSolver,
    TwoServerOptimizer,
)
from repro.io import dumps, estimate_from_dict, loads, policy_from_dict, policy_to_dict

from ..conftest import small_exp_model


class TestPolicyRoundTrip:
    def test_round_trip(self):
        p = ReallocationPolicy.two_server(12, 3)
        assert policy_from_dict(policy_to_dict(p)) == p

    def test_multi_server_round_trip(self):
        from repro.core import Transfer

        p = ReallocationPolicy.from_transfers(4, [Transfer(0, 3, 7), Transfer(2, 1, 2)])
        assert loads(dumps(p)) == p

    def test_rejects_wrong_type(self):
        with pytest.raises(ValueError):
            policy_from_dict({"type": "other"})

    def test_rejects_inconsistent_n(self):
        payload = policy_to_dict(ReallocationPolicy.two_server(1, 0))
        payload["n"] = 5
        with pytest.raises(ValueError):
            policy_from_dict(payload)


class TestEstimateRoundTrip:
    def test_round_trip(self):
        e = MCEstimate(0.5, 0.4, 0.6, 100, n_failures=3)
        assert loads(dumps(e)) == e

    def test_infinity_encoded_as_null(self):
        e = MCEstimate(math.inf, math.inf, math.inf, 10)
        payload = json.loads(dumps(e))
        assert payload["value"] is None
        revived = estimate_from_dict(payload)
        assert math.isinf(revived.value)

    def test_rejects_wrong_type(self):
        with pytest.raises(ValueError):
            estimate_from_dict({"type": "policy"})


class TestOptimizationResult:
    def test_serializes_optimizer_output(self):
        solver = TransformSolver.for_workload(small_exp_model(), [6, 3], dt=0.05)
        result = TwoServerOptimizer(solver).optimize(
            Metric.AVG_EXECUTION_TIME, [6, 3], step=3
        )
        payload = json.loads(dumps(result))
        assert payload["type"] == "optimization_result"
        assert payload["metric"] == "avg_execution_time"
        revived_policy = policy_from_dict(payload["policy"])
        assert revived_policy == result.policy


class TestPlainValues:
    def test_plain_json_passthrough(self):
        assert loads(dumps({"a": [1, 2]})) == {"a": [1, 2]}
        assert loads("[1, 2, 3]") == [1, 2, 3]
