"""`fork_map` platform behavior: serial fallback where fork is unavailable."""

import warnings

import pytest

from repro import _parallel
from repro._parallel import fork_map


@pytest.fixture
def no_fork(monkeypatch):
    """Pretend the platform has no fork start method (macOS spawn / Windows)."""
    monkeypatch.setattr(_parallel, "parallelism_available", lambda: False)
    _parallel.reset_serial_fallback_warning()
    yield
    _parallel.reset_serial_fallback_warning()


class TestSerialFallback:
    def test_jobs_gt_one_falls_back_with_warning(self, no_fork):
        with pytest.warns(RuntimeWarning, match="fork"):
            out = fork_map(lambda i: i * i, 5, jobs=4)
        assert out == [0, 1, 4, 9, 16]

    def test_warning_issued_only_once(self, no_fork):
        with pytest.warns(RuntimeWarning):
            fork_map(lambda i: i, 3, jobs=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert fork_map(lambda i: i + 1, 3, jobs=2) == [1, 2, 3]

    def test_serial_requests_do_not_warn(self, no_fork):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert fork_map(lambda i: i, 4, jobs=1) == [0, 1, 2, 3]
            assert fork_map(lambda i: i, 1, jobs=8) == [0]

    def test_reset_rearms_the_warning(self, no_fork):
        with pytest.warns(RuntimeWarning):
            fork_map(lambda i: i, 3, jobs=2)
        _parallel.reset_serial_fallback_warning()
        with pytest.warns(RuntimeWarning, match="fork"):
            fork_map(lambda i: i, 3, jobs=2)

    def test_fallback_results_match_serial_evaluation(self, no_fork):
        with pytest.warns(RuntimeWarning):
            fallback = fork_map(lambda i: 3 * i - 1, 7, jobs=4)
        assert fallback == [3 * i - 1 for i in range(7)]


class TestForkPath:
    def test_results_in_index_order(self):
        assert fork_map(lambda i: 2 * i, 6, jobs=2) == [0, 2, 4, 6, 8, 10]
