"""`fork_map` behavior: serial fallback, resilient retries, nesting guard."""

import os
import warnings

import pytest

from repro import _parallel
from repro._parallel import (
    ExecutionPolicy,
    ForkMapError,
    fork_map,
    retry_backoff,
)

needs_fork = pytest.mark.skipif(
    not _parallel.parallelism_available(), reason="needs the fork start method"
)


@pytest.fixture
def no_fork(monkeypatch):
    """Pretend the platform has no fork start method (macOS spawn / Windows)."""
    monkeypatch.setattr(_parallel, "parallelism_available", lambda: False)
    _parallel.reset_serial_fallback_warning()
    yield
    _parallel.reset_serial_fallback_warning()


class TestSerialFallback:
    def test_jobs_gt_one_falls_back_with_warning(self, no_fork):
        with pytest.warns(RuntimeWarning, match="fork"):
            out = fork_map(lambda i: i * i, 5, jobs=4)
        assert out == [0, 1, 4, 9, 16]

    def test_warning_issued_only_once(self, no_fork):
        with pytest.warns(RuntimeWarning):
            fork_map(lambda i: i, 3, jobs=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert fork_map(lambda i: i + 1, 3, jobs=2) == [1, 2, 3]

    def test_serial_requests_do_not_warn(self, no_fork):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert fork_map(lambda i: i, 4, jobs=1) == [0, 1, 2, 3]
            assert fork_map(lambda i: i, 1, jobs=8) == [0]

    def test_reset_rearms_the_warning(self, no_fork):
        with pytest.warns(RuntimeWarning):
            fork_map(lambda i: i, 3, jobs=2)
        _parallel.reset_serial_fallback_warning()
        with pytest.warns(RuntimeWarning, match="fork"):
            fork_map(lambda i: i, 3, jobs=2)

    def test_fallback_results_match_serial_evaluation(self, no_fork):
        with pytest.warns(RuntimeWarning):
            fallback = fork_map(lambda i: 3 * i - 1, 7, jobs=4)
        assert fallback == [3 * i - 1 for i in range(7)]


class TestForkPath:
    def test_results_in_index_order(self):
        assert fork_map(lambda i: 2 * i, 6, jobs=2) == [0, 2, 4, 6, 8, 10]


@pytest.fixture
def chaos(monkeypatch, tmp_path):
    """Arm the worker-side fault injection (REPRO_CHAOS).

    ``once=True`` (default) claims marker files so each fault fires a single
    time — a retry then succeeds; ``once=False`` makes the fault permanent.
    """

    def arm(spec, once=True):
        monkeypatch.setenv("REPRO_CHAOS", spec)
        if once:
            monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path))
        else:
            monkeypatch.delenv("REPRO_CHAOS_DIR", raising=False)

    return arm


@needs_fork
class TestResilientPath:
    def test_recovers_from_a_worker_crash(self, chaos):
        chaos("crash:2")
        out = fork_map(
            lambda i: i * i, 5, jobs=2, timeout=60.0, retries=2, backoff=0.0
        )
        assert out == [0, 1, 4, 9, 16]

    def test_recovers_from_a_hung_worker(self, chaos):
        chaos("hang:1")
        out = fork_map(
            lambda i: i + 10, 4, jobs=2, timeout=3.0, retries=2, backoff=0.0
        )
        assert out == [10, 11, 12, 13]

    def test_recovers_from_crash_and_hang_in_one_batch(self, chaos):
        chaos("crash:0,hang:3")
        out = fork_map(
            lambda i: 5 * i, 6, jobs=2, timeout=3.0, retries=3, backoff=0.0
        )
        assert out == [0, 5, 10, 15, 20, 25]

    def test_exhausted_retries_raise_fork_map_error(self, chaos):
        chaos("crash:0", once=False)  # no marker dir: the crash is permanent
        with pytest.raises(ForkMapError) as exc_info:
            fork_map(lambda i: i, 3, jobs=2, timeout=60.0, retries=1, backoff=0.0)
        err = exc_info.value
        assert 0 in err.indices
        assert err.attempts == 2
        assert err.last_error is not None

    def test_fn_exceptions_propagate_without_retry(self):
        def flaky(i):
            if i == 1:
                raise ValueError("bad item")
            return i

        with pytest.raises(ValueError, match="bad item"):
            fork_map(flaky, 4, jobs=2, timeout=60.0, retries=3, backoff=0.0)

    def test_resilient_results_match_fast_path(self):
        fast = fork_map(lambda i: 3 * i - 1, 8, jobs=2)
        resilient = fork_map(
            lambda i: 3 * i - 1, 8, jobs=2, timeout=60.0, retries=1, backoff=0.0
        )
        assert resilient == fast


class TestNestedGuard:
    @needs_fork
    def test_reentrant_fan_out_in_the_same_process_raises(self, monkeypatch):
        monkeypatch.setattr(_parallel, "_PAYLOAD", lambda i: i)
        monkeypatch.setattr(_parallel, "_PAYLOAD_PID", os.getpid())
        with pytest.raises(RuntimeError, match="nested fork_map"):
            fork_map(lambda i: i, 4, jobs=2)

    @needs_fork
    def test_inherited_payload_from_another_pid_degrades_serially(self, monkeypatch):
        # a forked worker inherits the parent's payload slot copy-on-write;
        # its own nested fork_map must run serially, not raise
        monkeypatch.setattr(_parallel, "_PAYLOAD", lambda i: i)
        monkeypatch.setattr(_parallel, "_PAYLOAD_PID", os.getpid() + 1)
        assert fork_map(lambda i: 3 * i, 4, jobs=4) == [0, 3, 6, 9]

    @needs_fork
    def test_nested_call_from_a_real_worker_degrades_serially(self):
        def outer(i):
            return sum(fork_map(lambda j: i + j, 3, jobs=2))

        expected = [sum(i + j for j in range(3)) for i in range(3)]
        # the nested fan-out is the point of this test
        assert fork_map(outer, 3, jobs=2) == expected  # repro-lint: disable=RL013

    def test_serial_paths_do_not_touch_the_payload_slot(self):
        assert fork_map(lambda i: i, 4, jobs=1) == [0, 1, 2, 3]
        assert _parallel._PAYLOAD is None
        assert _parallel._PAYLOAD_PID is None


class TestExecutionPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ExecutionPolicy(timeout=0.0)
        with pytest.raises(ValueError):
            ExecutionPolicy(retries=-1)
        with pytest.raises(ValueError):
            ExecutionPolicy(backoff=-0.1)

    def test_set_returns_previous_policy(self):
        default = _parallel.get_execution_policy()
        replacement = ExecutionPolicy(timeout=10.0, retries=2)
        previous = _parallel.set_execution_policy(replacement)
        try:
            assert previous is default
            assert _parallel.get_execution_policy() is replacement
        finally:
            _parallel.set_execution_policy(previous)
        assert _parallel.get_execution_policy() is default

    @needs_fork
    def test_installed_policy_drives_the_resilient_path(self, chaos):
        chaos("crash:1")
        previous = _parallel.set_execution_policy(
            ExecutionPolicy(timeout=60.0, retries=2, backoff=0.0)
        )
        try:
            assert fork_map(lambda i: i, 4, jobs=2) == [0, 1, 2, 3]
        finally:
            _parallel.set_execution_policy(previous)


class TestRetryBackoff:
    def test_reproducible_for_same_task_and_attempt(self):
        a = retry_backoff(0.5, 2, "task-a")
        b = retry_backoff(0.5, 2, "task-a")
        assert a == b

    def test_distinct_tasks_get_distinct_delays(self):
        # full jitter: two tasks that crashed together must not retry in
        # lockstep forever
        delays_a = [retry_backoff(0.5, n, "task-a") for n in range(1, 6)]
        delays_b = [retry_backoff(0.5, n, "task-b") for n in range(1, 6)]
        assert all(x != y for x, y in zip(delays_a, delays_b))

    def test_distinct_attempts_get_distinct_delays(self):
        assert retry_backoff(0.5, 1, "t") != retry_backoff(0.5, 2, "t")

    def test_delay_is_bounded_by_the_exponential_ceiling(self):
        for attempt in range(1, 8):
            delay = retry_backoff(0.25, attempt, "t")
            assert 0.0 <= delay <= 0.25 * 2 ** (attempt - 1)

    def test_zero_or_negative_base_disables_the_sleep(self):
        assert retry_backoff(0.0, 3, "t") == 0.0
        assert retry_backoff(-1.0, 3, "t") == 0.0
        assert retry_backoff(0.5, 0, "t") == 0.0
