"""Shared fixtures for the distributed engine tests.

``FakeClock`` gives lease/timeout tests a hand-cranked time source;
``ScriptedTransport`` is a fully synchronous transport the tests drive
message by message — no threads, no processes, no sleeps — so failure
sequences (crash, silence, limplock) are exact scripts, not races.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Any, List, Tuple

import pytest

from repro._checkpoint import CheckpointStore, checkpoint_key
from repro.distributed.tasks import TaskGraph
from repro.distributed.transport import Transport

_REPO_ROOT = Path(__file__).resolve().parents[2]
_TOOLS = _REPO_ROOT / "tools"
if str(_TOOLS) not in sys.path:
    sys.path.insert(0, str(_TOOLS))


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = float(t)

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += float(dt)


class ScriptedTransport(Transport):
    """A transport whose workers are imaginary: tests inject the messages."""

    can_kill = True

    def __init__(self) -> None:
        self.sent: List[Tuple[str, Tuple[Any, ...]]] = []
        self.inbox: List[Tuple[Any, ...]] = []
        self.alive: set = set()
        self.killed: List[str] = []
        self._order: List[str] = []
        self._seq = 0
        self.graph = None

    def start(self, graph, n_workers, heartbeat_interval) -> None:
        self.graph = graph
        for _ in range(n_workers):
            self.spawn()

    def spawn(self) -> str:
        wid = f"w{self._seq}"
        self._seq += 1
        self._order.append(wid)
        self.alive.add(wid)
        self.inbox.append(("ready", wid, None, None, None))
        return wid

    def workers(self):
        return [w for w in self._order if w in self.alive]

    def send(self, worker_id, msg) -> None:
        self.sent.append((worker_id, msg))

    def recv_all(self):
        out, self.inbox = self.inbox, []
        return out

    def is_alive(self, worker_id) -> bool:
        return worker_id in self.alive

    def kill(self, worker_id) -> None:
        self.alive.discard(worker_id)
        self.killed.append(worker_id)

    def stop(self) -> None:
        pass

    # -- test helpers ----------------------------------------------------
    def assignment_of(self, key: str):
        """Latest ("run", key, ...) send, as (worker, generation)."""
        for worker, msg in reversed(self.sent):
            if msg[0] == "run" and msg[1] == key:
                return worker, msg[2]
        return None

    def crash(self, worker_id: str) -> None:
        self.alive.discard(worker_id)


@pytest.fixture(scope="session")
def static_lock_model():
    """RL021's static lock table + acquisition-order graph for ``src/``."""
    from repro_lint.concurrency import static_lock_order

    return static_lock_order(["src"], root=_REPO_ROOT)


@pytest.fixture
def lock_tracer(static_lock_model):
    """Record real lock acquisition orders; assert them against RL021.

    Installed *before* the test body creates any engine objects, so the
    ``threading.Lock``/``RLock`` factories hand out traced locks; on
    teardown, observed orders must be inversion-free and explained by the
    static model.
    """
    from lock_tracer import LockTracer

    tracer = LockTracer()
    tracer.install()
    try:
        yield tracer
    finally:
        tracer.uninstall()
    tracer.assert_consistent(static_lock_model)


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def store(tmp_path):
    return CheckpointStore(
        str(tmp_path / "cells.ckpt"), checkpoint_key({"suite": "distributed"})
    )


def square_graph(n: int = 4) -> TaskGraph:
    """A graph of n independent squaring tasks with stable keys."""
    graph = TaskGraph()
    for i in range(n):
        graph.submit(lambda i=i: i * i, {"task": "square", "i": i})
    return graph
