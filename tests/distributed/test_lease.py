"""Lease semantics over the checkpoint store (satellite #3 of the issue).

Covers the full claim lifecycle: acquisition and generation bumps, renewal
by heartbeat, expiry -> reclaim -> reassign, double-completion resolution,
and persistence of lease/generation records across a store reopen.
"""

import pytest

from repro._checkpoint import CheckpointStore, checkpoint_key
from repro.distributed.lease import LeaseManager

from .conftest import FakeClock

KEY = "task-a"


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def store(tmp_path):
    return CheckpointStore(str(tmp_path / "s.ckpt"), checkpoint_key({"t": 1}))


@pytest.fixture
def leases(store, clock):
    return LeaseManager(store, ttl=10.0, clock=clock)


class TestAcquire:
    def test_first_acquire_is_generation_one(self, leases):
        assert leases.acquire(KEY, "w0") == 1

    def test_conflicting_acquire_is_refused_while_valid(self, leases):
        leases.acquire(KEY, "w0")
        assert leases.acquire(KEY, "w1") is None

    def test_completed_task_cannot_be_leased(self, leases, store):
        store.put(KEY, 123)
        assert leases.acquire(KEY, "w0") is None

    def test_reacquire_after_expiry_bumps_generation(self, leases, clock):
        assert leases.acquire(KEY, "w0") == 1
        clock.advance(10.0)  # deadline is inclusive: now >= deadline expires
        assert leases.expired() == [KEY]
        assert leases.acquire(KEY, "w1") == 2
        assert leases.generation(KEY) == 2


class TestRenewal:
    def test_heartbeat_renewal_extends_the_deadline(self, leases, clock):
        leases.acquire(KEY, "w0")
        clock.advance(8.0)
        assert leases.renew(KEY, "w0")
        clock.advance(8.0)  # t=16 < 8+10: still covered by the renewal
        assert leases.expired() == []

    def test_limplocked_worker_keeps_its_lease_alive(self, leases, clock):
        # limplock: the worker is slow but not silent — heartbeats keep
        # arriving, so the *lease* never expires (detection of limplock is
        # the scheduler's speculation/timeout job, not the lease's)
        leases.acquire(KEY, "w0")
        for _ in range(10):
            clock.advance(5.0)
            assert leases.renew(KEY, "w0")
        assert leases.expired() == []

    def test_superseded_worker_cannot_renew(self, leases, clock):
        leases.acquire(KEY, "w0")
        clock.advance(10.0)
        leases.acquire(KEY, "w1")  # reclaim after expiry
        assert not leases.renew(KEY, "w0")

    def test_release_then_renew_fails(self, leases):
        leases.acquire(KEY, "w0")
        assert leases.release(KEY, "w0")
        assert not leases.renew(KEY, "w0")


class TestExpiryReclaimReassign:
    def test_full_cycle(self, leases, clock):
        gen0 = leases.acquire(KEY, "w0")
        clock.advance(11.0)
        assert leases.expired() == [KEY]
        gen1 = leases.acquire(KEY, "w1")  # reassign to a fresh worker
        assert (gen0, gen1) == (1, 2)
        assert leases.expired() == []  # the new lease is live again

    def test_reclaim_all_drops_every_record(self, leases, store):
        leases.acquire("a", "w0")
        leases.acquire("b", "w1")
        assert sorted(leases.reclaim_all()) == ["a", "b"]
        assert store.active_leases == {}
        # generations survive the reclaim: the retry cap keeps counting
        assert leases.generation("a") == 1


class TestDoubleCompletion:
    def test_first_commit_wins_deterministically(self, store):
        assert store.put_if_absent(KEY, "first")
        assert not store.put_if_absent(KEY, "late-twin")
        assert store.get(KEY) == "first"

    def test_completion_clears_the_lease(self, leases, store):
        leases.acquire(KEY, "w0")
        store.put_if_absent(KEY, 7)
        assert store.lease_of(KEY) is None


class TestPersistence:
    def test_leases_and_generations_survive_reopen(self, tmp_path, clock):
        key = checkpoint_key({"t": 1})
        path = str(tmp_path / "s.ckpt")
        store = CheckpointStore(path, key)
        leases = LeaseManager(store, ttl=10.0, clock=clock)
        leases.acquire(KEY, "w0")
        reopened = CheckpointStore(path, key)
        assert reopened.lease_of(KEY)["owner"] == "w0"
        assert reopened.generation(KEY) == 1

    def test_restart_reclaims_stale_leases_but_keeps_retry_count(
        self, tmp_path, clock
    ):
        key = checkpoint_key({"t": 1})
        path = str(tmp_path / "s.ckpt")
        store = CheckpointStore(path, key)
        LeaseManager(store, ttl=10.0, clock=clock).acquire(KEY, "w0")
        # scheduler restart: a fresh manager over the reloaded store
        store2 = CheckpointStore(path, key)
        leases2 = LeaseManager(store2, ttl=10.0, clock=clock)
        assert leases2.reclaim_all() == [KEY]
        assert leases2.acquire(KEY, "w1") == 2  # the cap keeps counting
