"""Sweep/campaign drivers over the distributed engine.

Covers the cell fabric itself (fake cell functions, ephemeral stores,
partial-store resume) and the user-facing parity contract: a distributed
``sweep_policies``/``ResilienceCampaign.run`` is bit-identical to serial.
"""

import numpy as np
import pytest

from repro._checkpoint import CheckpointStore, checkpoint_key
from repro._parallel import parallelism_available
from repro.core import Metric, TransformSolver, sweep_policies
from repro.distributed.scheduler import Scheduler
from repro.distributed.sweeps import (
    distributed_campaign_cells,
    distributed_sweep,
    ephemeral_store,
)

from ..conftest import small_exp_model

FAST = {"tick": 0.005}


def cell_fn(l12, l21):
    return float(l12 * 100 + l21)


class TestDistributedSweep:
    def test_grid_assembly_matches_cell_function(self, tmp_path):
        surface = distributed_sweep(
            cell_fn,
            [0, 2, 4],
            [0, 1],
            metric_name="avg_execution_time",
            loads=[4, 2],
            store=CheckpointStore(
                str(tmp_path / "s.ckpt"), checkpoint_key({"t": "sweep"})
            ),
            workers=2,
            scheduler_options=FAST,
        )
        expected = np.array([[cell_fn(i, j) for j in (0, 1)] for i in (0, 2, 4)])
        np.testing.assert_array_equal(surface, expected)

    def test_default_store_is_ephemeral(self):
        # no store argument: a throwaway single-run store is created
        surface = distributed_sweep(
            cell_fn,
            [0, 1],
            [0, 1],
            metric_name="avg_execution_time",
            loads=[2, 2],
            workers=2,
            scheduler_options=FAST,
        )
        assert surface.shape == (2, 2)

    def test_partial_store_resumes_only_missing_cells(self, tmp_path):
        path = str(tmp_path / "s.ckpt")
        key = checkpoint_key({"t": "resume-sweep"})
        calls = []

        def counting_cell(l12, l21):
            calls.append((l12, l21))
            return cell_fn(l12, l21)

        args = dict(
            metric_name="avg_execution_time",
            loads=[4, 2],
            workers=2,
            scheduler_options=dict(FAST, transport=None),
        )
        # first pass computes a 2x2 sub-grid into the store; the counting
        # payload mutation is observable because the transport is in-process
        first = distributed_sweep(  # repro-lint: disable=RL012
            counting_cell, [0, 2], [0, 1],
            store=CheckpointStore(path, key), **_inproc(args),
        )
        np.testing.assert_array_equal(
            first, [[cell_fn(i, j) for j in (0, 1)] for i in (0, 2)]
        )
        first_calls = len(calls)
        # second pass over a superset: only the new row is computed
        second = distributed_sweep(  # repro-lint: disable=RL012
            counting_cell, [0, 2, 4], [0, 1],
            store=CheckpointStore(path, key), **_inproc(args),
        )
        np.testing.assert_array_equal(
            second, [[cell_fn(i, j) for j in (0, 1)] for i in (0, 2, 4)]
        )
        assert len(calls) - first_calls == 2  # just the l12=4 row

    def test_distinct_metrics_do_not_collide(self, tmp_path):
        # metric name is part of the cell fingerprint: same grid, same
        # store, different metric -> fresh cells, not stale hits
        store_path = str(tmp_path / "s.ckpt")
        key = checkpoint_key({"t": "metric-clash"})
        args = dict(loads=[2, 2], workers=2, scheduler_options=FAST)
        a = distributed_sweep(
            cell_fn, [0, 1], [0],
            metric_name="avg_execution_time",
            store=CheckpointStore(store_path, key), **args,
        )
        b = distributed_sweep(
            lambda i, j: -cell_fn(i, j), [0, 1], [0],
            metric_name="reliability",
            store=CheckpointStore(store_path, key), **args,
        )
        np.testing.assert_array_equal(b, -a)


def _inproc(args):
    """Force the in-process transport so call counting stays observable."""
    from repro.distributed.transport import InprocTransport

    out = dict(args)
    out["scheduler_options"] = dict(FAST, transport=InprocTransport())
    return out


class TestDistributedCampaignCells:
    def test_cells_cover_the_full_lattice(self, tmp_path):
        def cell_values(i_int, i_pol):
            return [float(10 * i_int + i_pol)] * 3

        cells = distributed_campaign_cells(
            cell_values,
            2,
            ["baseline", "optimal"],
            campaign_key=checkpoint_key({"t": "campaign"}),
            store=CheckpointStore(
                str(tmp_path / "c.ckpt"), checkpoint_key({"t": "campaign"})
            ),
            workers=2,
            scheduler_options=FAST,
        )
        assert set(cells) == {(0, 0), (0, 1), (1, 0), (1, 1)}
        assert cells[(1, 0)] == [10.0, 10.0, 10.0]

    def test_policy_label_disambiguates_cells(self, tmp_path):
        # two policies with identical indices must not share fingerprints
        cells = distributed_campaign_cells(
            lambda i, p: [float(p)],
            1,
            ["a", "b", "c"],
            campaign_key=checkpoint_key({"t": "labels"}),
            store=CheckpointStore(
                str(tmp_path / "c.ckpt"), checkpoint_key({"t": "labels"})
            ),
            workers=2,
            scheduler_options=FAST,
        )
        assert [cells[(0, i)] for i in range(3)] == [[0.0], [1.0], [2.0]]


class TestEphemeralStore:
    def test_store_is_fresh_and_keyed(self):
        key = checkpoint_key({"t": "eph"})
        store = ephemeral_store(key)
        assert store.key == key
        assert len(store) == 0


@pytest.mark.skipif(
    not parallelism_available(), reason="needs the fork start method"
)
class TestSweepPoliciesParity:
    def test_workers_matches_serial_bit_for_bit(self):
        solver = TransformSolver.for_workload(small_exp_model(), [8, 4], dt=0.05)
        grid = (solver, Metric.AVG_EXECUTION_TIME, [8, 4], [0, 2, 4], [0, 2])
        serial = sweep_policies(*grid, batched=False, jobs=1)
        fanned = sweep_policies(*grid, workers=2, scheduler_options=FAST)
        np.testing.assert_array_equal(serial, fanned)
