"""Thread-lifecycle regressions the concurrency analyzer (RL024) found.

Three real findings, each pinned here after the fix:

* the heartbeat thread was unnamed (all other engine threads carry
  ``repro-<role>-<id>`` names);
* ``worker_loop``'s shutdown did ``beat.join(timeout=...)`` and ignored
  the outcome — a heartbeat thread stuck in a slow ``emit`` leaked
  silently;
* ``InprocTransport.stop`` timed-joined workers and ignored the outcome —
  a hung worker stayed listed and kept absorbing assignments.
"""

from __future__ import annotations

import queue
import threading
import time

import pytest

from repro.distributed.scheduler import Scheduler
from repro.distributed.tasks import TaskGraph
from repro.distributed.transport import InprocTransport

from .conftest import square_graph
from .test_scheduler import boot, make_scheduler, pump


def one_task_graph(payload):
    graph = TaskGraph()
    graph.submit(payload, {"suite": "lifecycle"})
    task = next(iter(graph))
    return graph, task


class TestHeartbeatThread:
    def test_heartbeat_thread_is_named_and_daemonic(self):
        from repro.distributed.worker import worker_loop

        graph, task = one_task_graph(lambda: time.sleep(0.3) or 7)
        inbox: "queue.Queue" = queue.Queue()
        msgs: "queue.Queue" = queue.Queue()
        inbox.put(("run", task.key, 1, task.index))
        inbox.put(("stop",))
        runner = threading.Thread(
            target=worker_loop,
            args=("wtest", inbox.get, msgs.put, graph, 0.05),
            daemon=True,
        )
        runner.start()
        beat = None
        deadline = time.monotonic() + 2.0
        while beat is None and time.monotonic() < deadline:
            beat = next(
                (
                    t
                    for t in threading.enumerate()
                    if t.name == "repro-heartbeat-wtest"
                ),
                None,
            )
            time.sleep(0.01)
        assert beat is not None, "heartbeat thread never appeared by name"
        assert beat.daemon
        runner.join(timeout=2.0)
        assert not runner.is_alive()

    def test_leaked_heartbeat_thread_is_reported(self):
        """A heartbeat stuck in emit past the join timeout emits a warn."""
        from repro.distributed.worker import worker_loop

        graph, task = one_task_graph(lambda: time.sleep(0.15) or 7)
        msgs = []

        def emit(msg):
            if msg[0] == "heartbeat":
                # the scheduler channel is limplocked: the heartbeat
                # thread blocks here well past join(timeout=2*interval)
                time.sleep(0.6)
            msgs.append(msg)

        inbox: "queue.Queue" = queue.Queue()
        inbox.put(("run", task.key, 1, task.index))
        inbox.put(("stop",))
        worker_loop("wleak", inbox.get, emit, graph, 0.05)
        warns = [m for m in msgs if m[0] == "warn"]
        assert warns, f"no warn message in {[m[0] for m in msgs]}"
        kind, worker_id, key, generation, detail = warns[0]
        assert worker_id == "wleak"
        assert key == task.key
        assert "repro-heartbeat-wleak" in detail
        assert "still alive" in detail
        # the result itself still commits: the leak is a warning, not a loss
        assert any(m[0] == "result" and m[4] == 7 for m in msgs)


class TestInprocStop:
    def test_stop_condemns_a_hung_worker(self):
        graph, task = one_task_graph(lambda: time.sleep(2.5) or 7)
        transport = InprocTransport()
        transport.start(graph, 1, heartbeat_interval=0.05)
        wid = transport.workers()[0]
        transport.send(wid, ("run", task.key, 1, task.index))
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline:
            if any(m[0] == "heartbeat" for m in transport.recv_all()):
                break  # the payload is definitely running (and hung)
            time.sleep(0.01)
        transport.stop()
        assert wid not in transport.workers(), (
            "a worker that ignored stop within the join timeout must be "
            "condemned, not left listed"
        )
        assert not transport.is_alive(wid)


class TestSchedulerWarnChannel:
    def test_warn_message_is_counted_and_non_fatal(self, store, clock):
        sched = make_scheduler(square_graph(2), store, clock)
        boot(sched)
        sched.transport.inbox.append(
            ("warn", "w0", "k", 1, "heartbeat thread leaked")
        )
        with pytest.warns(RuntimeWarning, match="heartbeat thread leaked"):
            pump(sched)
        assert sched.stats.worker_warnings == 1
        assert "worker_warnings" in sched.stats.to_dict()

    def test_on_stats_receives_snapshots_not_the_live_object(self, store):
        seen = []
        sched = Scheduler(
            square_graph(4),
            store,
            transport=InprocTransport(),
            workers=2,
            tick=0.001,
            on_stats=seen.append,
            stats_interval=0.0,
        )
        sched.run()
        assert seen
        assert all(s is not sched.stats for s in seen)
        assert len({id(s) for s in seen}) == len(seen)
        assert seen[-1].done == 4
