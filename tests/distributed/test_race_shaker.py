"""Race shaker: the inproc engine under a hostile thread scheduler.

``sys.setswitchinterval(1e-5)`` forces the interpreter to preempt threads
every ~10µs — hundreds of times more often than the production default —
so thread interleavings that would take millions of ordinary runs to hit
happen within a single sweep.  With the runtime lock tracer installed,
each run simultaneously checks

* **value determinism** — every shaken surface is byte-identical to the
  serial per-cell scan (the engine's core bit-identity contract), and
* **lock discipline** — observed acquisition orders contain no inversion
  and match RL021's static acquisition graph (``lock_tracer`` fixture
  teardown).
"""

from __future__ import annotations

import sys

import numpy as np
import pytest

from repro.distributed.sweeps import distributed_sweep
from repro.distributed.transport import InprocTransport

L12 = [0, 2, 4]
L21 = [0, 1, 3]
SEEDS = range(20)


def cell_fn(l12, l21):
    return float(l12 * 1000 + l21 * 7 + (l12 * l21) % 13)


@pytest.fixture
def shaken_switch_interval():
    old = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)
    try:
        yield
    finally:
        sys.setswitchinterval(old)


class TestRaceShaker:
    def test_shaken_inproc_sweeps_match_serial(
        self, shaken_switch_interval, lock_tracer
    ):
        serial = np.array([[cell_fn(i, j) for j in L21] for i in L12])
        for seed in SEEDS:
            surface = distributed_sweep(
                cell_fn,
                L12,
                L21,
                metric_name="avg_execution_time",
                loads=[4, 2],
                workers=2 + seed % 3,
                scheduler_options={
                    "transport": InprocTransport(),
                    "tick": 0.001 + (seed % 5) * 0.0005,
                    "heartbeat_interval": 0.01,
                },
            )
            assert surface.tobytes() == serial.tobytes(), (
                f"seed {seed}: shaken surface diverged from serial"
            )
        # the sweeps really exercised traced locks (solver cache /
        # workspaces or engine internals); an empty trace would make the
        # oracle's teardown assertion vacuous
        assert lock_tracer.created, "no locks were created under the tracer"
