"""Chaos suite: real forked workers killed and hung mid-campaign.

Uses the existing ``REPRO_CHAOS`` contract (crash:<idx> / hang:<idx> with
one-shot markers in ``REPRO_CHAOS_DIR``) against the ForkTransport: a
worker is SIGKILLed mid-task or wedged inside a payload, and the campaign
must still complete with results identical to an undisturbed run.
"""

import numpy as np
import pytest

from repro._checkpoint import CheckpointStore, checkpoint_key
from repro._parallel import parallelism_available
from repro.distributed.scheduler import Scheduler
from repro.distributed.tasks import TaskGraph
from repro.distributed.transport import ForkTransport

needs_fork = pytest.mark.skipif(
    not parallelism_available(), reason="needs the fork start method"
)

SERIAL = [i * i for i in range(8)]


def build_graph(n=8):
    graph = TaskGraph()
    for i in range(n):
        graph.submit(lambda i=i: i * i, {"task": "chaos-square", "i": i})
    return graph


def fresh_store(tmp_path, name):
    return CheckpointStore(
        str(tmp_path / name), checkpoint_key({"suite": "chaos"})
    )


@needs_fork
class TestCrashRecovery:
    def test_sigkilled_worker_mid_campaign(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "crash:3")
        monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path))
        graph = build_graph()
        sched = Scheduler(
            graph,
            fresh_store(tmp_path, "crash.ckpt"),
            transport=ForkTransport(),
            workers=3,
            lease_ttl=5.0,
            backoff=0.05,
            tick=0.01,
        )
        results = sched.run()
        assert [results[k] for k in graph.keys] == SERIAL
        assert sched.stats.workers_killed >= 1
        assert sched.stats.retries >= 1

    def test_two_workers_killed(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "crash:1,crash:5")
        monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path))
        graph = build_graph()
        sched = Scheduler(
            graph,
            fresh_store(tmp_path, "crash2.ckpt"),
            transport=ForkTransport(),
            workers=3,
            lease_ttl=5.0,
            backoff=0.05,
            tick=0.01,
        )
        results = sched.run()
        assert [results[k] for k in graph.keys] == SERIAL
        assert sched.stats.workers_killed >= 2


@needs_fork
class TestHangRecovery:
    def test_hung_worker_is_timed_out_and_replaced(self, tmp_path, monkeypatch):
        # the hung worker's heartbeat thread keeps beating: only the
        # per-task wall-time bound catches it (liveness is not progress)
        monkeypatch.setenv("REPRO_CHAOS", "hang:2")
        monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path))
        graph = build_graph()
        sched = Scheduler(
            graph,
            fresh_store(tmp_path, "hang.ckpt"),
            transport=ForkTransport(),
            workers=3,
            lease_ttl=30.0,  # heartbeats renew: the lease never expires
            task_timeout=1.5,
            backoff=0.05,
            tick=0.01,
        )
        results = sched.run()
        assert [results[k] for k in graph.keys] == SERIAL
        assert sched.stats.workers_killed >= 1


@needs_fork
class TestKilledThenResumed:
    def test_resumed_campaign_recomputes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "crash:0")
        monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path))
        path = str(tmp_path / "resume.ckpt")
        key = checkpoint_key({"suite": "chaos"})
        store = CheckpointStore(path, key)
        graph = build_graph()
        sched = Scheduler(
            graph,
            store,
            transport=ForkTransport(),
            workers=2,
            lease_ttl=5.0,
            backoff=0.05,
            tick=0.01,
        )
        results = sched.run()
        assert [results[k] for k in graph.keys] == SERIAL
        # "scheduler killed": reopen the store as a fresh process would
        store2 = CheckpointStore(path, key)
        graph2 = build_graph()
        sched2 = Scheduler(
            graph2, store2, transport=ForkTransport(), workers=2, tick=0.01
        )
        results2 = sched2.run()
        assert [results2[k] for k in graph2.keys] == SERIAL
        assert sched2.stats.executed == 0  # zero recompute ...
        assert store2.hits == len(graph2)  # ... verified via hit counts


@needs_fork
class TestCampaignParity:
    def test_chaotic_distributed_campaign_matches_serial(
        self, tmp_path, monkeypatch
    ):
        from repro.analysis.resilience import ResilienceCampaign
        from repro.core import ReallocationPolicy
        from repro.faults import FaultPlan

        from ..conftest import small_exp_model

        campaign = ResilienceCampaign(
            model=small_exp_model(),
            loads=[5, 3],
            policies=[
                ("baseline", ReallocationPolicy.none(2)),
                ("optimal", ReallocationPolicy.two_server(2, 1)),
            ],
            plan=FaultPlan.standard(seed=5),
            deadline=60.0,
            n_reps=16,
            seed=17,
        )
        serial = campaign.run([0.0, 0.6])
        monkeypatch.setenv("REPRO_CHAOS", "crash:1")
        monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path))
        chaotic = campaign.run(
            [0.0, 0.6],
            workers=3,
            scheduler_options={"lease_ttl": 5.0, "backoff": 0.05, "tick": 0.01},
        )
        assert len(chaotic.cells) == len(serial.cells)
        for a, b in zip(serial.cells, chaotic.cells):
            assert a.to_dict() == b.to_dict()  # bit-identical to serial

    def test_chaotic_distributed_sweep_matches_serial(
        self, tmp_path, monkeypatch
    ):
        from repro.distributed.sweeps import distributed_sweep

        def cell_value(l12, l21):
            return float(l12 * 10 + l21)

        expected = np.array(
            [[cell_value(i, j) for j in range(3)] for i in range(4)]
        )
        monkeypatch.setenv("REPRO_CHAOS", "crash:2,hang:7")
        monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path))
        surface = distributed_sweep(
            cell_value,
            list(range(4)),
            list(range(3)),
            metric_name="avg_execution_time",
            loads=[3, 2],
            store=fresh_store(tmp_path, "sweep.ckpt"),
            workers=3,
            scheduler_options={
                "lease_ttl": 5.0,
                "task_timeout": 1.5,
                "backoff": 0.05,
                "tick": 0.01,
            },
        )
        np.testing.assert_array_equal(surface, expected)
