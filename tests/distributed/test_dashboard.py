"""Dashboard rendering: golden frames from synthetic stats, no scheduler."""

import io

from repro.distributed.dashboard import Dashboard
from repro.distributed.scheduler import SchedulerStats


def make_stats(**overrides):
    stats = SchedulerStats(total=961)
    stats.done = 801
    stats.resumed = 640
    stats.executed = 161
    stats.in_flight = 4
    stats.ready = 156
    stats.retries = 2
    stats.speculated = 1
    stats.stragglers = 1
    stats.duplicates_discarded = 0
    stats.workers = 4
    stats.workers_killed = 1
    stats.store_hits = 640
    stats.store_misses = 321
    stats.elapsed = 64.5
    stats.throughput = 12.4
    for name, value in overrides.items():
        setattr(stats, name, value)
    return stats


class TestRender:
    def test_golden_frame(self):
        frame = Dashboard(title="sweep").render(make_stats())
        assert frame.splitlines() == [
            "sweep 961 cells  [#########################.....]  801/961 (83.4%)",
            "throughput   12.4 cells/s   elapsed 64.5 s   eta ~12.9 s",
            "workers 4 (1 killed)   in-flight 4   ready 156   stragglers 1",
            "retries 2   speculative 1   duplicates 0   resumed 640",
            "checkpoint hits 640 / misses 321 (66.6% hit rate)",
        ]

    def test_complete_run_has_no_eta(self):
        frame = Dashboard().render(make_stats(done=961, throughput=15.0))
        assert "eta -" in frame
        assert "961/961 (100.0%)" in frame
        assert "[" + "#" * 30 + "]" in frame

    def test_empty_campaign_does_not_divide_by_zero(self):
        stats = SchedulerStats(total=0)
        frame = Dashboard().render(stats)
        assert "0/0" in frame
        assert "(0.0% hit rate)" in frame


class TestEmit:
    def test_plain_stream_appends_frames(self):
        stream = io.StringIO()  # not a TTY: no cursor-control escapes
        dash = Dashboard(title="t", stream=stream)
        dash.emit(make_stats(done=1))
        dash.emit(make_stats(done=2))
        out = stream.getvalue()
        assert "\x1b[" not in out
        assert out.count("t 961 cells") == 2

    def test_tty_stream_rewrites_in_place(self):
        class Tty(io.StringIO):
            def isatty(self):
                return True

        stream = Tty()
        dash = Dashboard(title="t", stream=stream)
        dash.emit(make_stats(done=1))
        dash.emit(make_stats(done=2))
        out = stream.getvalue()
        # second frame starts by cursoring back over the 5-line first frame
        assert "\x1b[5F\x1b[J" in out
