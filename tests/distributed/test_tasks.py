"""Task model: content-addressed keys, canonical order, dependency gates."""

import pytest

from repro._checkpoint import checkpoint_key
from repro.distributed.tasks import TaskGraph, make_task, task_key


class TestTaskKey:
    def test_equal_specs_equal_keys(self):
        spec = {"task": "cell", "l12": 3, "l21": 1}
        assert task_key(spec) == task_key({"l21": 1, "l12": 3, "task": "cell"})

    def test_different_specs_differ(self):
        assert task_key({"i": 0}) != task_key({"i": 1})

    def test_same_fingerprint_machinery_as_checkpoints(self):
        spec = {"campaign": "resilience-v1", "cell": [0, 1]}
        assert task_key(spec) == checkpoint_key(spec)


class TestTaskGraph:
    def test_canonical_order_is_insertion_order(self):
        graph = TaskGraph()
        keys = [graph.submit(lambda: None, {"i": i}).key for i in range(5)]
        assert graph.keys == keys
        assert [t.index for t in graph] == [0, 1, 2, 3, 4]

    def test_indices_are_reassigned_on_insertion(self):
        graph = TaskGraph()
        task = make_task(lambda: 1, {"i": 0}, index=99)
        added = graph.add(task)
        assert added.index == 0

    def test_duplicate_key_rejected(self):
        graph = TaskGraph()
        graph.submit(lambda: 1, {"i": 0})
        with pytest.raises(ValueError, match="duplicate"):
            graph.submit(lambda: 2, {"i": 0})

    def test_unknown_dependency_rejected(self):
        graph = TaskGraph()
        with pytest.raises(ValueError, match="unknown task"):
            graph.submit(lambda: 1, {"i": 0}, deps=["nope"])

    def test_dependencies_must_precede_dependents(self):
        # cycles are unrepresentable: a dep must already be in the graph
        graph = TaskGraph()
        a = graph.submit(lambda: 1, {"i": 0})
        b = graph.submit(lambda: 2, {"i": 1}, deps=[a.key])
        assert graph.dependents()[a.key] == [b.key]
        assert graph.dependents()[b.key] == []

    def test_run_executes_payload(self):
        graph = TaskGraph()
        t = graph.submit(lambda: 42, {"i": 0})
        assert graph.run(t.key) == 42
