"""Scheduler behavior under scripted failures (no threads, no sleeps).

The ScriptedTransport plus a FakeClock turn every failure mode into an
exact message sequence: the tests call the scheduler's reap/dispatch steps
directly, so crash detection, lease expiry, hang timeouts, speculation and
the retry budget are each pinned down without real concurrency.
"""

import pytest

from repro.distributed.scheduler import Scheduler, SchedulerError
from repro.distributed.tasks import TaskGraph
from repro.distributed.transport import InprocTransport

from .conftest import FakeClock, ScriptedTransport, square_graph


def make_scheduler(graph, store, clock, **overrides):
    options = dict(
        transport=ScriptedTransport(),
        workers=2,
        lease_ttl=10.0,
        backoff=0.0,
        speculate=False,
        clock=clock,
    )
    options.update(overrides)
    return Scheduler(graph, store, **options)


def boot(sched):
    """Mirror run()'s setup: states, lease reclaim, fleet start, readies."""
    sched._started_at = sched.clock()
    sched._init_states()
    sched.leases.reclaim_all()
    sched.transport.start(sched.graph, sched.workers, sched.heartbeat_interval)
    pump(sched)


def pump(sched):
    """One loop body: drain messages, reap, dispatch."""
    for msg in sched.transport.recv_all():
        sched._handle(msg)
    now = sched.clock()
    sched._reap_dead_workers(now)
    sched._reap_expired_leases(now)
    sched._reap_timeouts(now)
    sched._maybe_speculate(now)
    sched._dispatch(now)


class TestDispatch:
    def test_canonical_order_and_one_task_per_worker(self, store, clock):
        graph = square_graph(4)
        sched = make_scheduler(graph, store, clock)
        boot(sched)
        assigned = [msg[1] for _, msg in sched.transport.sent if msg[0] == "run"]
        assert assigned == graph.keys[:2]  # two workers, canonical order

    def test_dependency_gates_dispatch(self, store, clock):
        graph = TaskGraph()
        a = graph.submit(lambda: 1, {"i": 0})
        b = graph.submit(lambda: 2, {"i": 1}, deps=[a.key])
        sched = make_scheduler(graph, store, clock)
        boot(sched)
        assert sched.transport.assignment_of(b.key) is None
        worker, gen = sched.transport.assignment_of(a.key)
        sched.transport.inbox.append(("result", worker, a.key, gen, 1))
        sched.transport.inbox.append(("ready", worker, None, None, None))
        pump(sched)
        assert sched.transport.assignment_of(b.key) is not None


class TestCrashRecovery:
    def test_dead_worker_detected_reassigned_and_replaced(self, store, clock):
        graph = square_graph(1)
        key = graph.keys[0]
        sched = make_scheduler(graph, store, clock, workers=1)
        boot(sched)
        worker, _ = sched.transport.assignment_of(key)
        sched.transport.crash(worker)  # SIGKILL: liveness probe fails
        pump(sched)  # detect + reclaim + respawn
        pump(sched)  # replacement announces ready; task reassigned
        worker2, gen2 = sched.transport.assignment_of(key)
        assert worker2 != worker
        assert gen2 == 2
        assert sched.stats.retries == 1
        assert sched.stats.workers_killed == 1

    def test_lease_expiry_reclaims_a_silent_worker(self, store, clock):
        # the worker is alive but silent (no heartbeats): only the lease
        # notices — this is the scheduler-crash-proof detection path
        graph = square_graph(1)
        key = graph.keys[0]
        sched = make_scheduler(graph, store, clock, workers=1)
        boot(sched)
        worker, _ = sched.transport.assignment_of(key)
        clock.advance(11.0)  # past the 10 s TTL with no renewal
        pump(sched)
        pump(sched)
        worker2, _ = sched.transport.assignment_of(key)
        assert worker2 != worker
        assert worker in sched.transport.killed

    def test_heartbeats_keep_the_lease_alive(self, store, clock):
        graph = square_graph(1)
        key = graph.keys[0]
        sched = make_scheduler(graph, store, clock, workers=1)
        boot(sched)
        worker, gen = sched.transport.assignment_of(key)
        for _ in range(4):
            clock.advance(5.0)
            sched.transport.inbox.append(("heartbeat", worker, key, gen, None))
            pump(sched)
        assert sched.transport.assignment_of(key) == (worker, gen)
        assert sched.stats.retries == 0


class TestHangAndLimplock:
    def test_task_timeout_reclaims_despite_heartbeats(self, store, clock):
        # a hung worker still heartbeats — liveness is not progress; the
        # wall-time bound is what catches it
        graph = square_graph(1)
        key = graph.keys[0]
        sched = make_scheduler(graph, store, clock, workers=1, task_timeout=20.0)
        boot(sched)
        worker, gen = sched.transport.assignment_of(key)
        for _ in range(5):
            clock.advance(5.0)
            sched.transport.inbox.append(("heartbeat", worker, key, gen, None))
            pump(sched)
        pump(sched)
        worker2, _ = sched.transport.assignment_of(key)
        assert worker2 != worker
        assert worker in sched.transport.killed

    def test_straggler_gets_a_speculative_twin(self, store, clock):
        graph = square_graph(4)
        sched = make_scheduler(
            graph,
            store,
            clock,
            workers=2,
            speculate=True,
            min_durations=3,
            speculation_factor=3.0,
            speculation_floor=0.5,
        )
        boot(sched)
        # three fast completions to establish the duration median (~0.1 s)
        for key in graph.keys[:3]:
            hit = sched.transport.assignment_of(key)
            if hit is None:
                pump(sched)
                hit = sched.transport.assignment_of(key)
            worker, gen = hit
            clock.advance(0.1)
            sched.transport.inbox.append(("result", worker, key, gen, 0))
            sched.transport.inbox.append(("ready", worker, None, None, None))
            pump(sched)
        straggler = graph.keys[3]
        primary, gen = sched.transport.assignment_of(straggler)
        clock.advance(5.0)  # way past 3 x median
        pump(sched)
        assert sched.stats.speculated == 1
        state = sched._states[straggler]
        assert len(state.assignments) == 2
        twin = next(a for a in state.assignments if a.speculative)
        # kill-on-first-finish: the twin commits first, the primary dies
        sched.transport.inbox.append(("result", twin.worker, straggler, twin.generation, 9))
        pump(sched)
        assert primary in sched.transport.killed
        assert sched._results[straggler] == 9
        # the loser's late result is discarded by the idempotent commit
        sched.transport.inbox.append(("result", primary, straggler, gen, 9))
        pump(sched)
        assert sched.stats.duplicates_discarded == 1
        assert store.get(straggler) == 9


class TestRetryBudget:
    def test_budget_exhaustion_raises(self, store, clock):
        graph = square_graph(1)
        key = graph.keys[0]
        sched = make_scheduler(graph, store, clock, workers=1, max_attempts=2)
        boot(sched)
        worker, _ = sched.transport.assignment_of(key)
        sched.transport.crash(worker)
        pump(sched)  # reclaim: attempt 1 of 2 lost
        pump(sched)  # replacement picks the task up again
        worker2, gen2 = sched.transport.assignment_of(key)
        assert worker2 != worker
        assert gen2 == 2
        sched.transport.crash(worker2)
        with pytest.raises(SchedulerError, match="retry budget"):
            pump(sched)

    def test_backoff_defers_the_reassignment(self, store, clock):
        graph = square_graph(1)
        key = graph.keys[0]
        sched = make_scheduler(graph, store, clock, workers=1, backoff=2.0)
        boot(sched)
        worker, _ = sched.transport.assignment_of(key)
        sched.transport.crash(worker)
        pump(sched)
        pump(sched)
        # still the crashed assignment: not_before is in the future
        assert sched.transport.assignment_of(key) == (worker, 1)
        clock.advance(2.0)  # full-jitter backoff is <= base * 2^(n-1)
        pump(sched)
        worker2, _ = sched.transport.assignment_of(key)
        assert worker2 != worker


class TestPayloadErrors:
    def test_payload_exception_fails_fast(self, store, clock):
        graph = TaskGraph()
        t = graph.submit(lambda: 1, {"i": 0})
        sched = make_scheduler(graph, store, clock, workers=1)
        boot(sched)
        worker, gen = sched.transport.assignment_of(t.key)
        sched.transport.inbox.append(
            ("error", worker, t.key, gen, "ValueError('boom')")
        )
        with pytest.raises(SchedulerError, match="deterministic bugs"):
            pump(sched)


class TestEndToEnd:
    def test_inproc_run_returns_all_results(self, store):
        graph = square_graph(6)
        sched = Scheduler(
            graph, store, transport=InprocTransport(), workers=3, tick=0.001
        )
        results = sched.run()
        assert [results[k] for k in graph.keys] == [0, 1, 4, 9, 16, 25]
        assert sched.stats.done == 6
        assert sched.stats.executed == 6

    def test_resume_recomputes_nothing(self, store):
        graph = square_graph(6)
        Scheduler(graph, store, transport=InprocTransport(), workers=2, tick=0.001).run()
        hits_before = store.hits
        # a second scheduler over the same store: every cell replays
        graph2 = square_graph(6)
        sched2 = Scheduler(
            graph2, store, transport=InprocTransport(), workers=2, tick=0.001
        )
        results = sched2.run()
        assert [results[k] for k in graph2.keys] == [0, 1, 4, 9, 16, 25]
        assert sched2.stats.executed == 0
        assert sched2.stats.resumed == 6
        assert store.hits == hits_before + 6  # verified via hit counts

    def test_partial_store_resumes_only_the_missing_cells(self, store):
        first = square_graph(3)  # same keys as the first 3 of 6
        Scheduler(first, store, transport=InprocTransport(), workers=2, tick=0.001).run()
        full = square_graph(6)
        sched = Scheduler(
            full, store, transport=InprocTransport(), workers=2, tick=0.001
        )
        results = sched.run()
        assert [results[k] for k in full.keys] == [0, 1, 4, 9, 16, 25]
        assert sched.stats.resumed == 3
        assert sched.stats.executed == 3

    def test_stats_snapshot_reaches_the_hook(self, store):
        graph = square_graph(4)
        seen = []
        sched = Scheduler(
            graph,
            store,
            transport=InprocTransport(),
            workers=2,
            tick=0.001,
            on_stats=lambda s: seen.append(s.to_dict()),
            stats_interval=0.0,
        )
        sched.run()
        assert seen and seen[-1]["done"] == 4
        assert seen[-1]["total"] == 4
