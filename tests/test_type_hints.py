"""Every public annotation in ``repro`` must actually resolve.

Regression guard for the ``estimator._spawn_streams`` bug, where a
``List[...]`` return annotation was written without importing ``List``:
under ``from __future__ import annotations`` the module imports fine and
the break only surfaces once something calls ``typing.get_type_hints``
(dataclass introspection, runtime contract checking, doc tooling).

The sweep resolves hints per module.  Names imported only under
``if TYPE_CHECKING:`` are parsed out of the module source with ``ast``
and injected as that module's *own* local namespace — a shared union
namespace would leak ``List`` (imported for real elsewhere) into every
module and mask exactly the bug this test exists to catch.
"""

import ast
import importlib
import inspect
import pkgutil
import typing
from pathlib import Path
from typing import Any, Dict, List, Tuple

import pytest

import repro

SRC_ROOT = Path(repro.__file__).parent


def _iter_module_names() -> List[str]:
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return sorted(names)


def _type_checking_namespace(module: Any) -> Dict[str, Any]:
    """Resolve names imported under ``if TYPE_CHECKING:`` in *module* only."""
    source_file = getattr(module, "__file__", None)
    if source_file is None:
        return {}
    tree = ast.parse(Path(source_file).read_text(encoding="utf-8"))
    namespace: Dict[str, Any] = {}
    for node in ast.walk(tree):
        if not (isinstance(node, ast.If) and _is_type_checking_test(node.test)):
            continue
        for stmt in node.body:
            if isinstance(stmt, ast.ImportFrom) and stmt.module is not None:
                package = module.__package__ or ""
                imported = importlib.import_module(
                    "." * stmt.level + stmt.module if stmt.level else stmt.module,
                    package=package,
                )
                for alias in stmt.names:
                    namespace[alias.asname or alias.name] = getattr(
                        imported, alias.name
                    )
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    namespace[alias.asname or alias.name.split(".")[0]] = (
                        importlib.import_module(alias.name)
                    )
    return namespace


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _module_functions(module: Any) -> List[Tuple[str, Any]]:
    """All functions defined in *module* — public API plus private helpers.

    Private helpers are included deliberately: the original bug lived in
    the private ``_spawn_streams``, whose broken annotation poisoned the
    hints of the public estimators that call it.
    """
    found: List[Tuple[str, Any]] = []
    for name, obj in vars(module).items():
        if name.startswith("__") or getattr(obj, "__module__", None) != module.__name__:
            continue
        if inspect.isfunction(obj):
            found.append((name, obj))
        elif inspect.isclass(obj):
            for mname, member in vars(obj).items():
                if mname.startswith("__") and mname != "__init__":
                    continue
                fn = inspect.unwrap(getattr(member, "__func__", member))
                if inspect.isfunction(fn) and fn.__module__ == module.__name__:
                    found.append((f"{name}.{mname}", fn))
    return found


@pytest.mark.parametrize("module_name", _iter_module_names())
def test_all_public_annotations_resolve(module_name: str) -> None:
    module = importlib.import_module(module_name)
    localns = _type_checking_namespace(module)
    functions = _module_functions(module)
    failures: List[str] = []
    for qualname, fn in functions:
        try:
            typing.get_type_hints(fn, localns=localns)
        except Exception as exc:  # noqa: BLE001 - report every break at once
            failures.append(f"{module_name}.{qualname}: {exc!r}")
    assert not failures, "unresolvable annotations:\n" + "\n".join(failures)


def test_sweep_covers_the_estimator_module() -> None:
    """The sweep must actually reach the function the original bug lived in."""
    assert "repro.simulation.estimator" in _iter_module_names()
    module = importlib.import_module("repro.simulation.estimator")
    names = [q for q, _ in _module_functions(module)]
    assert "_spawn_streams" in names
    assert any("estimate" in q for q in names)
