"""Runtime invariant contracts: property tests and corruption tripwires.

Two directions are covered:

* every shipped distribution family, discretized on grids from coarse to
  fine, passes the mass/CDF contracts (hypothesis sweeps the grid space);
* corrupted inputs trip each contract with a :class:`ContractViolation`.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import _contracts
from repro._contracts import ContractViolation
from repro.core.cache import extend_service_ladder
from repro.distributions.grid import Grid, GridMass, delta, from_distribution

from .conftest import ALL_DISTRIBUTIONS_MEAN2


@pytest.fixture(autouse=True)
def contracts_on():
    """Force contracts on for every test here, restoring the suite default."""
    _contracts.set_contracts_enabled(True)
    yield
    _contracts.set_contracts_enabled(True)


def _uniform_mass(grid: Grid, total: float = 1.0) -> np.ndarray:
    return np.full(grid.n, total / grid.n)


# ----------------------------------------------------------------------
# property: shipped families pass the invariants on coarse AND fine grids
# ----------------------------------------------------------------------
#: dt from very coarse (half the mean) to fine; n from tiny to mid-size —
#: the product spans horizons from ~1 mean to dozens of means
grid_strategy = st.builds(
    Grid,
    dt=st.sampled_from([1.0, 0.25, 0.05, 0.01]),
    n=st.integers(min_value=4, max_value=512),
)


@settings(max_examples=40, deadline=None)
@given(dist=st.sampled_from(ALL_DISTRIBUTIONS_MEAN2), grid=grid_strategy)
def test_discretized_mass_satisfies_contracts(dist, grid):
    gm = from_distribution(dist, grid)  # __init__ already runs the mass check
    _contracts.check_mass_vector(gm.mass, where="test")
    _contracts.check_cdf(gm.cdf(), where="test")
    assert 0.0 <= gm.total <= 1.0 + _contracts.MASS_TOL
    assert gm.tail == pytest.approx(1.0 - gm.total, abs=1e-12)


@settings(max_examples=20, deadline=None)
@given(
    dist=st.sampled_from(ALL_DISTRIBUTIONS_MEAN2),
    kernel=st.sampled_from(["spectral", "direct"]),
    k_max=st.integers(min_value=1, max_value=6),
)
def test_service_ladders_satisfy_contracts(dist, kernel, k_max):
    grid = Grid(0.1, 256)
    ladder = [delta(grid)]
    extend_service_ladder(ladder, from_distribution(dist, grid), k_max, kernel)
    assert len(ladder) == k_max + 1
    totals = [gm.total for gm in ladder]
    _contracts.check_ladder(totals, where="test")
    for gm in ladder:
        _contracts.check_cdf(gm.cdf(), where="test")


# ----------------------------------------------------------------------
# tripwires: corrupted inputs must raise ContractViolation
# ----------------------------------------------------------------------
class TestMassContract:
    def test_super_stochastic_mass_trips_on_construction(self):
        grid = Grid(0.1, 16)
        with pytest.raises(ContractViolation, match="exceeds 1"):
            GridMass(grid, _uniform_mass(grid, total=1.5))

    def test_nan_mass_trips(self):
        mass = _uniform_mass(Grid(0.1, 16))
        mass[3] = np.nan
        with pytest.raises(ContractViolation, match="non-finite"):
            _contracts.check_mass_vector(mass)

    def test_negative_mass_trips(self):
        mass = _uniform_mass(Grid(0.1, 16))
        mass[0] = -1e-6
        with pytest.raises(ContractViolation, match="negative"):
            _contracts.check_mass_vector(mass)

    @given(total=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=25, deadline=None)
    def test_sub_stochastic_mass_passes(self, total):
        grid = Grid(0.1, 16)
        GridMass(grid, _uniform_mass(grid, total=total))  # must not raise


class TestCdfContract:
    def test_decreasing_cdf_trips(self):
        with pytest.raises(ContractViolation, match="monotonicity"):
            _contracts.check_cdf(np.array([0.0, 0.5, 0.3, 1.0]))

    def test_cdf_above_one_trips(self):
        with pytest.raises(ContractViolation, match=r"\[0, 1\]"):
            _contracts.check_cdf(np.array([0.0, 0.5, 1.5]))

    def test_corrupted_gridmass_detected_at_cdf_time(self):
        gm = delta(Grid(0.1, 16))
        gm.mass[5] = -0.4  # simulate an un-clipped kernel bug in place
        with pytest.raises(ContractViolation, match="monotonicity"):
            gm.cdf()


class TestGridAndLadderContracts:
    def test_ladder_extension_on_wrong_grid_trips(self):
        ladder = [delta(Grid(0.1, 64))]
        alien = from_distribution(ALL_DISTRIBUTIONS_MEAN2[0], Grid(0.2, 64))
        with pytest.raises(ContractViolation, match="different grids"):
            extend_service_ladder(ladder, alien, 3)

    def test_growing_ladder_totals_trip(self):
        with pytest.raises(ContractViolation, match="grows"):
            _contracts.check_ladder([1.0, 0.8, 0.9])


class TestSurfaceContract:
    def test_probability_surface_above_one_trips(self):
        with pytest.raises(ContractViolation, match="probability surface"):
            _contracts.check_metric_surface(np.array([[0.2, 1.2]]), bounded=True)

    def test_nan_execution_surface_trips(self):
        with pytest.raises(ContractViolation, match="NaN"):
            _contracts.check_metric_surface(np.array([[np.nan]]), bounded=False)

    def test_inf_execution_surface_is_allowed(self):
        _contracts.check_metric_surface(np.array([[np.inf, 3.0]]), bounded=False)


class TestEnablement:
    def test_disabled_contracts_do_not_raise(self):
        _contracts.set_contracts_enabled(False)
        _contracts.check_cdf(np.array([1.0, 0.0]))  # would trip when enabled
        grid = Grid(0.1, 8)
        GridMass(grid, _uniform_mass(grid, total=2.0))

    def test_violation_is_an_assertion_error(self):
        assert issubclass(ContractViolation, AssertionError)

    def test_override_none_reverts_to_environment_default(self):
        _contracts.set_contracts_enabled(None)
        assert _contracts.contracts_enabled() == _contracts._ENV_DEFAULT
