"""Runtime lock-tracing oracle for the concurrency analyzer.

The static pass (``repro-lint --concurrency``, RL021) predicts a lock
acquisition-order graph.  This module validates that model against
reality: :class:`LockTracer` patches the ``threading.Lock`` /
``threading.RLock`` factories with recording wrappers, so any test run
under it (the distributed chaos/race-shaker suites install it via a
pytest fixture) captures the *observed* acquisition orders per thread.
:meth:`LockTracer.assert_consistent` then fails the run on

* an **inversion** — both ``A`` before ``B`` and ``B`` before ``A``
  observed (two threads really can traverse a cycle in opposite orders:
  the deadlock RL021 warns about, caught in vivo), and
* an **unmodelled edge** — an observed ordering between two locks the
  static graph knows, with no path between them in the static model
  (the analyzer's graph is missing real behaviour).

Test-only: nothing in ``src/repro`` imports this module.  Install /
uninstall are idempotent and always pair them in a ``finally`` — locks
created while patched keep working after :meth:`uninstall` (they only
stop recording).
"""

from __future__ import annotations

import os
import threading
import traceback
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

__all__ = ["LockInversionError", "LockTracer", "TracedLock"]

#: a lock's identity for ordering purposes: its creation site
Label = Tuple[str, int]  # (filename, lineno)


class LockInversionError(AssertionError):
    """Observed acquisition orders contradict each other or the model."""


def _creation_label(skip_files: Tuple[str, ...]) -> Label:
    """Creation site of a lock: first stack frame outside tracer/threading.

    Basenames are matched exactly — a suffix match would also skip the
    tracer's own test file (``test_lock_tracer.py``).
    """
    for frame in reversed(traceback.extract_stack()):
        if os.path.basename(frame.filename) in skip_files:
            continue
        return (frame.filename, frame.lineno or 0)
    return ("<unknown>", 0)


class TracedLock:
    """Wrapper around a real lock that records acquisition order.

    Delegates the full lock protocol — including the private
    ``_release_save`` / ``_acquire_restore`` / ``_is_owned`` trio
    ``threading.Condition`` drives — so it can stand in for ``Lock`` and
    ``RLock`` anywhere, Condition internals included.
    """

    def __init__(self, tracer: "LockTracer", inner: Any, label: Label):
        self._tracer = tracer
        self._inner = inner
        self.label = label

    # -- the lock protocol ---------------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._tracer._note_acquire(self)
        return got

    def release(self) -> None:
        self._tracer._note_release(self)
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def locked(self) -> bool:
        return bool(self._inner.locked())

    # -- Condition integration (CPython internals) ---------------------
    def _release_save(self) -> Any:
        self._tracer._note_release(self, full=True)
        if hasattr(self._inner, "_release_save"):
            return self._inner._release_save()
        self._inner.release()
        return None

    def _acquire_restore(self, state: Any) -> None:
        if hasattr(self._inner, "_acquire_restore"):
            self._inner._acquire_restore(state)
        else:
            self._inner.acquire()
        self._tracer._note_acquire(self)

    def _is_owned(self) -> bool:
        if hasattr(self._inner, "_is_owned"):
            return bool(self._inner._is_owned())
        # plain Lock: owned iff locked and not acquirable by us right now
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True

    def __getattr__(self, name: str) -> Any:
        # full transparency for protocol extensions the stdlib grows over
        # time — e.g. multiprocessing.resource_tracker probes
        # RLock._recursion_count() on 3.11+
        return getattr(self._inner, name)

    def __repr__(self) -> str:
        return f"TracedLock({self.label[0]}:{self.label[1]})"


class _HeldStack(threading.local):
    def __init__(self) -> None:
        self.stack: List[Tuple[TracedLock, int]] = []  # (lock, depth)


class LockTracer:
    """Patch the lock factories; record per-thread acquisition orders."""

    _SKIP_FILES = ("lock_tracer.py", "threading.py")

    def __init__(self) -> None:
        self._orig_lock: Optional[Any] = None
        self._orig_rlock: Optional[Any] = None
        self._guard = threading.Lock()  # created pre-patch: a real lock
        self._held = _HeldStack()
        self.active = False
        #: observed edges: (held label, acquired label) -> witness thread
        self.edges: Dict[Tuple[Label, Label], str] = {}
        #: every lock creation site seen
        self.created: Set[Label] = set()

    # -- install / uninstall -------------------------------------------
    def install(self) -> "LockTracer":
        if self._orig_lock is not None:
            return self
        self._orig_lock = threading.Lock
        self._orig_rlock = threading.RLock

        def make_lock() -> TracedLock:
            return self._wrap(self._orig_lock())

        def make_rlock() -> TracedLock:
            return self._wrap(self._orig_rlock())

        threading.Lock = make_lock  # type: ignore[misc]
        threading.RLock = make_rlock  # type: ignore[misc]
        self.active = True
        return self

    def uninstall(self) -> None:
        if self._orig_lock is None:
            return
        threading.Lock = self._orig_lock  # type: ignore[misc]
        threading.RLock = self._orig_rlock  # type: ignore[misc]
        self._orig_lock = None
        self._orig_rlock = None
        # locks created while patched outlive us; stop recording through them
        self.active = False

    def __enter__(self) -> "LockTracer":
        return self.install()

    def __exit__(self, *exc: Any) -> None:
        self.uninstall()

    def _wrap(self, inner: Any) -> TracedLock:
        label = _creation_label(self._SKIP_FILES)
        with self._guard:
            self.created.add(label)
        return TracedLock(self, inner, label)

    # -- recording ------------------------------------------------------
    def _note_acquire(self, lock: TracedLock) -> None:
        if not self.active:
            return
        stack = self._held.stack
        for i, (held, depth) in enumerate(stack):
            if held is lock:  # reentrant re-acquire: bump depth, no edge
                stack[i] = (held, depth + 1)
                return
        if stack:
            top = stack[-1][0]
            if top.label != lock.label:
                edge = (top.label, lock.label)
                if edge not in self.edges:
                    with self._guard:
                        self.edges.setdefault(
                            edge, threading.current_thread().name
                        )
        stack.append((lock, 1))

    def _note_release(self, lock: TracedLock, full: bool = False) -> None:
        if not self.active:
            return
        stack = self._held.stack
        for i in range(len(stack) - 1, -1, -1):
            held, depth = stack[i]
            if held is lock:
                if depth > 1 and not full:
                    stack[i] = (held, depth - 1)
                else:
                    del stack[i]
                return

    # -- analysis -------------------------------------------------------
    def inversions(self) -> List[Tuple[Label, Label]]:
        """Edge pairs observed in *both* directions (real deadlock risk)."""
        seen = set(self.edges)
        return sorted(
            (a, b) for (a, b) in seen if (b, a) in seen and a < b
        )

    def cycles(self) -> List[FrozenSet[Label]]:
        """SCCs of size >= 2 in the observed-order graph."""
        adj: Dict[Label, Set[Label]] = {}
        for a, b in self.edges:
            adj.setdefault(a, set()).add(b)
            adj.setdefault(b, set())
        index_of: Dict[Label, int] = {}
        low: Dict[Label, int] = {}
        on_stack: Set[Label] = set()
        stack: List[Label] = []
        sccs: List[FrozenSet[Label]] = []
        counter = [0]

        def strongconnect(v: Label) -> None:
            work: List[Tuple[Label, List[Label]]] = [(v, sorted(adj[v]))]
            index_of[v] = low[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            while work:
                node, succs = work[-1]
                advanced = False
                while succs:
                    succ = succs.pop(0)
                    if succ not in index_of:
                        index_of[succ] = low[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, sorted(adj[succ])))
                        advanced = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index_of[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    low[work[-1][0]] = min(low[work[-1][0]], low[node])
                if low[node] == index_of[node]:
                    scc: Set[Label] = set()
                    while True:
                        top = stack.pop()
                        on_stack.discard(top)
                        scc.add(top)
                        if top == node:
                            break
                    if len(scc) >= 2:
                        sccs.append(frozenset(scc))

        for v in sorted(adj):
            if v not in index_of:
                strongconnect(v)
        return sccs

    def assert_consistent(self, static_model: Dict[str, Any]) -> None:
        """Fail on observed inversions, or on observed orderings between
        statically-known locks that the static graph cannot explain.

        ``static_model`` is the output of
        :func:`repro_lint.concurrency.static_lock_order`: locks are
        matched to observed creation sites by ``(path suffix, line)``.
        """
        inv = self.inversions()
        if inv:
            lines = [
                f"  {a[0]}:{a[1]} <-> {b[0]}:{b[1]} (both orders observed)"
                for a, b in inv
            ]
            raise LockInversionError(
                "lock acquisition order inverted at runtime:\n"
                + "\n".join(lines)
            )

        # map static lock ids onto observed creation sites
        by_site: Dict[Label, str] = {}
        for lock in static_model.get("locks", ()):
            for label in self.created:
                if (
                    label[0].endswith(lock["path"])
                    and label[1] == lock["line"]
                ):
                    by_site[label] = lock["id"]

        static_adj: Dict[str, Set[str]] = {}
        for edge in static_model.get("edges", ()):
            static_adj.setdefault(edge["src"], set()).add(edge["dst"])

        def has_path(src: str, dst: str) -> bool:
            frontier, seen = [src], {src}
            while frontier:
                node = frontier.pop()
                if node == dst:
                    return True
                for nxt in static_adj.get(node, ()):
                    if nxt not in seen:
                        seen.add(nxt)
                        frontier.append(nxt)
            return False

        unmodelled = []
        for (a, b), thread in sorted(self.edges.items()):
            src, dst = by_site.get(a), by_site.get(b)
            if src is None or dst is None or src == dst:
                continue  # a lock the static pass does not model
            if not has_path(src, dst):
                unmodelled.append((src, dst, thread))
        if unmodelled:
            lines = [
                f"  {src} held while acquiring {dst} (thread {thread})"
                for src, dst, thread in unmodelled
            ]
            raise LockInversionError(
                "observed lock orderings missing from the static model "
                "(repro-lint --concurrency RL021 graph is incomplete):\n"
                + "\n".join(lines)
            )
