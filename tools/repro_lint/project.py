"""RL004 — cache-fingerprint completeness (a project-wide rule).

``repro.core.cache.fingerprint`` serializes ``vars(dist)`` — the *instance
attributes* of a distribution.  Any constructor parameter that never makes
it into an instance attribute is therefore invisible to the
:class:`SolverCache` key: two distributions differing only in that
parameter would silently share one cached mass vector (aliasing), which is
precisely the "silent correctness drift" class of bug this linter exists
to catch.  The rule cross-checks every ``Distribution`` subclass's
``__init__`` parameters against the names flowing into ``self.*``
assignments (or into a ``super().__init__`` call, which stores them in the
base).  ``__slots__`` on a subclass is flagged too: ``vars()`` cannot see
slotted attributes at all, so fingerprinting would break outright.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Sequence, Set, Tuple

from .engine import FileContext, Finding

__all__ = ["rl004_fingerprint_completeness"]

#: root classes whose subclasses participate in cache fingerprinting
_ROOT_CLASSES = ("Distribution",)


def _base_names(cls: ast.ClassDef) -> List[str]:
    names = []
    for base in cls.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _is_dataclass(cls: ast.ClassDef) -> bool:
    for dec in cls.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _names_in(node: ast.AST) -> Set[str]:
    return {sub.id for sub in ast.walk(node) if isinstance(sub, ast.Name)}


def _captured_names(init: ast.FunctionDef) -> Set[str]:
    """Names that flow into instance state inside ``__init__``.

    A parameter counts as captured when it appears anywhere in a statement
    that assigns to ``self.<attr>`` (directly or through a transformation:
    ``self.rate = float(rate)`` captures ``rate``), in the arguments of a
    ``super().__init__`` / ``Base.__init__`` call, or when a *local derived
    from it* does (``w = np.asarray(weights); self.weights = w`` captures
    ``weights`` — taint propagates through local assignments).
    """
    sink: Set[str] = set()
    local_flows: List[Tuple[Set[str], Set[str]]] = []  # (targets, rhs names)
    for node in ast.walk(init):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            stores_self = any(
                isinstance(t, ast.Attribute)
                and isinstance(t.value, ast.Name)
                and t.value.id == "self"
                for t in targets
            )
            if stores_self:
                sink.update(_names_in(node))
            elif node.value is not None:
                local_targets = set()
                for t in targets:
                    local_targets.update(
                        sub.id
                        for sub in ast.walk(t)
                        if isinstance(sub, ast.Name)
                    )
                if local_targets:
                    local_flows.append((local_targets, _names_in(node.value)))
        elif isinstance(node, ast.Call):
            func = node.func
            is_super_init = (
                isinstance(func, ast.Attribute)
                and func.attr == "__init__"
                or (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Call)
                    and isinstance(func.value.func, ast.Name)
                    and func.value.func.id == "super"
                )
            )
            if is_super_init:
                for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                    sink.update(_names_in(arg))

    # propagate backwards: a local feeding the sink makes its sources sinks
    changed = True
    while changed:
        changed = False
        for local_targets, rhs_names in local_flows:
            if local_targets & sink and not rhs_names <= sink:
                sink.update(rhs_names)
                changed = True
    return sink


def _init_params(init: ast.FunctionDef) -> List[ast.arg]:
    params = [*init.args.posonlyargs, *init.args.args, *init.args.kwonlyargs]
    return [p for p in params if p.arg not in ("self", "cls")]


def rl004_fingerprint_completeness(
    contexts: Sequence[FileContext],
) -> Iterator[Finding]:
    """Flag ``Distribution.__init__`` parameters the cache key cannot see."""
    # pass 1: the class graph over all fingerprint-zone files
    classes: Dict[str, Tuple[ast.ClassDef, FileContext]] = {}
    for ctx in contexts:
        if not ctx.in_fingerprint_zone:
            continue
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                classes[node.name] = (node, ctx)

    # pass 2: transitive subclasses of the fingerprinted roots
    dist_names: Set[str] = set(_ROOT_CLASSES)
    changed = True
    while changed:
        changed = False
        for name, (cls, _) in classes.items():
            if name in dist_names:
                continue
            if any(b in dist_names for b in _base_names(cls)):
                dist_names.add(name)
                changed = True

    for name in sorted(dist_names - set(_ROOT_CLASSES)):
        cls, ctx = classes[name]
        for stmt in cls.body:
            if (
                isinstance(stmt, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "__slots__"
                    for t in stmt.targets
                )
            ):
                yield Finding(
                    rule="RL004",
                    path=ctx.rel_path,
                    line=stmt.lineno,
                    col=stmt.col_offset,
                    message=(
                        f"Distribution subclass {name} defines __slots__; "
                        "fingerprint() reads vars(self) and cannot see slotted "
                        "attributes, so caching would break"
                    ),
                )
        if _is_dataclass(cls):
            continue  # dataclass fields are instance attributes by construction
        init = next(
            (
                s
                for s in cls.body
                if isinstance(s, ast.FunctionDef) and s.name == "__init__"
            ),
            None,
        )
        if init is None:
            continue  # inherited __init__ was already checked on the base
        if init.args.vararg is not None or init.args.kwarg is not None:
            continue  # *args/**kwargs: cannot reason statically
        captured = _captured_names(init)
        for param in _init_params(init):
            if param.arg not in captured:
                yield Finding(
                    rule="RL004",
                    path=ctx.rel_path,
                    line=param.lineno,
                    col=param.col_offset,
                    message=(
                        f"constructor parameter {param.arg!r} of Distribution "
                        f"subclass {name} never reaches an instance attribute; "
                        "fingerprint() serializes vars(self), so two instances "
                        "differing only in this parameter would alias the same "
                        "SolverCache entry"
                    ),
                )
