"""Serializable summaries the extractor produces and the rules consume.

A *summary* is everything the whole-program phase needs to know about one
module — and nothing else.  The AST never crosses this boundary, which is
what makes summaries cacheable by content hash (:mod:`.cache`) and cheap to
ship across worker processes for ``--jobs`` extraction.

Dataflow is expressed in *atoms*, the currency of the taint analysis:

``("param", name)``
    the value of a function parameter;
``("free", name)``
    the value of a name captured from an enclosing scope or the module
    globals (the program index resolves module-level bindings later);
``("source", kind, line)``
    a nondeterminism source observed directly (kinds in
    :data:`repro_lint.flow.config.SOURCE_KINDS`);
``("call", id)``
    the result of call site ``id`` — expanded interprocedurally by
    :mod:`.taint` once every function's summary is known.

Atom sets are capped (:data:`MAX_ATOMS`) so pathological expressions cannot
blow the analysis up; the cap trades recall for bounded memory, never
soundness of what *is* reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

__all__ = [
    "Atom",
    "AtomSet",
    "MAX_ATOMS",
    "cap_atoms",
    "CallSite",
    "ForkMapSite",
    "ClassInfo",
    "FunctionSummary",
    "FileSummary",
    "SUMMARY_FORMAT_VERSION",
]

#: bump when the extraction semantics change — cached summaries written by
#: an older extractor are then treated as misses instead of being trusted
SUMMARY_FORMAT_VERSION = 2

Atom = Tuple[Any, ...]
AtomSet = FrozenSet[Atom]

MAX_ATOMS = 64


def cap_atoms(atoms: FrozenSet[Atom]) -> FrozenSet[Atom]:
    if len(atoms) <= MAX_ATOMS:
        return atoms
    return frozenset(sorted(atoms, key=repr)[:MAX_ATOMS])


def _atoms_to_json(atoms: FrozenSet[Atom]) -> List[List[Any]]:
    return sorted([list(a) for a in atoms])


def _atoms_from_json(data: List[List[Any]]) -> FrozenSet[Atom]:
    return frozenset(tuple(a) for a in data)


@dataclass
class CallSite:
    """One resolved (or opaque) call expression inside a function."""

    index: int
    line: int
    col: int
    #: best-effort resolved dotted name (``None`` = opaque expression)
    callee: Optional[str]
    #: atoms feeding the receiver of an attribute call (``a.b(...)``)
    recv: FrozenSet[Atom] = frozenset()
    #: atoms feeding each positional argument, in order
    args: List[FrozenSet[Atom]] = field(default_factory=list)
    #: atoms feeding keyword arguments, by name (``**kwargs`` under ``"*"``)
    kwargs: Dict[str, FrozenSet[Atom]] = field(default_factory=dict)
    #: taint kind produced by this call itself (a source), if any
    source_kind: Optional[str] = None
    #: order-insensitive reducer — strips order taint from its result
    sanitizer: bool = False
    #: the callee is a class: the call constructs an instance and binds
    #: positional args starting at the ``__init__`` parameter after ``self``
    constructs: bool = False

    def to_json(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "line": self.line,
            "col": self.col,
            "callee": self.callee,
            "recv": _atoms_to_json(self.recv),
            "args": [_atoms_to_json(a) for a in self.args],
            "kwargs": {k: _atoms_to_json(v) for k, v in sorted(self.kwargs.items())},
            "source_kind": self.source_kind,
            "sanitizer": self.sanitizer,
            "constructs": self.constructs,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "CallSite":
        return cls(
            index=data["index"],
            line=data["line"],
            col=data["col"],
            callee=data["callee"],
            recv=_atoms_from_json(data["recv"]),
            args=[_atoms_from_json(a) for a in data["args"]],
            kwargs={k: _atoms_from_json(v) for k, v in data["kwargs"].items()},
            source_kind=data["source_kind"],
            sanitizer=data["sanitizer"],
            constructs=data["constructs"],
        )


@dataclass
class ForkMapSite:
    """One ``fork_map(payload, ...)`` call with its payload resolved."""

    line: int
    col: int
    #: qualname of the payload function/lambda (``None`` = unresolvable)
    payload: Optional[str]
    #: "lambda" | "local" | "function" | "opaque"
    payload_kind: str = "opaque"
    #: free names of the payload bound to module-level mutable containers
    captured_mutable_globals: List[str] = field(default_factory=list)
    #: ``(name, what)`` pairs for captures of unpicklable resources
    captured_unpicklable: List[Tuple[str, str]] = field(default_factory=list)

    def to_json(self) -> Dict[str, Any]:
        return {
            "line": self.line,
            "col": self.col,
            "payload": self.payload,
            "payload_kind": self.payload_kind,
            "captured_mutable_globals": list(self.captured_mutable_globals),
            "captured_unpicklable": [list(p) for p in self.captured_unpicklable],
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "ForkMapSite":
        return cls(
            line=data["line"],
            col=data["col"],
            payload=data["payload"],
            payload_kind=data["payload_kind"],
            captured_mutable_globals=list(data["captured_mutable_globals"]),
            captured_unpicklable=[tuple(p) for p in data["captured_unpicklable"]],
        )


@dataclass
class ClassInfo:
    """A project class: resolved bases and the methods defined on it."""

    qualname: str
    line: int
    bases: List[str] = field(default_factory=list)
    methods: List[str] = field(default_factory=list)

    def to_json(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname,
            "line": self.line,
            "bases": list(self.bases),
            "methods": list(self.methods),
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "ClassInfo":
        return cls(
            qualname=data["qualname"],
            line=data["line"],
            bases=list(data["bases"]),
            methods=list(data["methods"]),
        )


@dataclass
class FunctionSummary:
    """File-local dataflow facts about one function, method or lambda."""

    qualname: str
    line: int
    #: positionally bindable parameter names, in order (``self`` included)
    params: List[str] = field(default_factory=list)
    #: keyword-only parameter names
    kwonly: List[str] = field(default_factory=list)
    has_vararg: bool = False
    has_kwarg: bool = False
    #: atoms that may flow into the return value
    returns: FrozenSet[Atom] = frozenset()
    callsites: List[CallSite] = field(default_factory=list)
    #: parameters whose object state the body writes (``p.x = ...``,
    #: ``p.x[k] = ...``, ``p.items.append`` is *not* counted — only stores
    #: and mutating-method calls rooted at the bare parameter name)
    mutated_params: List[str] = field(default_factory=list)
    #: captured/global names the body writes through
    mutated_frees: List[str] = field(default_factory=list)
    forkmap_sites: List[ForkMapSite] = field(default_factory=list)
    #: owning class qualname for methods (``None`` for plain functions)
    class_qualname: Optional[str] = None

    def to_json(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname,
            "line": self.line,
            "params": list(self.params),
            "kwonly": list(self.kwonly),
            "has_vararg": self.has_vararg,
            "has_kwarg": self.has_kwarg,
            "returns": _atoms_to_json(self.returns),
            "callsites": [c.to_json() for c in self.callsites],
            "mutated_params": list(self.mutated_params),
            "mutated_frees": list(self.mutated_frees),
            "forkmap_sites": [s.to_json() for s in self.forkmap_sites],
            "class_qualname": self.class_qualname,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "FunctionSummary":
        return cls(
            qualname=data["qualname"],
            line=data["line"],
            params=list(data["params"]),
            kwonly=list(data["kwonly"]),
            has_vararg=data["has_vararg"],
            has_kwarg=data["has_kwarg"],
            returns=_atoms_from_json(data["returns"]),
            callsites=[CallSite.from_json(c) for c in data["callsites"]],
            mutated_params=list(data["mutated_params"]),
            mutated_frees=list(data["mutated_frees"]),
            forkmap_sites=[ForkMapSite.from_json(s) for s in data["forkmap_sites"]],
            class_qualname=data["class_qualname"],
        )


@dataclass
class FileSummary:
    """Everything the whole-program phase keeps about one module."""

    rel_path: str
    module: str
    is_package: bool = False
    functions: List[FunctionSummary] = field(default_factory=list)
    classes: List[ClassInfo] = field(default_factory=list)
    #: names listed in a literal ``__all__`` (``None`` = no ``__all__``)
    exports: Optional[List[str]] = None
    #: module-level names bound to mutable containers (list/dict/set/…)
    mutable_globals: List[str] = field(default_factory=list)
    #: module-level name -> atoms of its binding (for ``("free", n)``
    #: resolution across functions of the same module)
    global_bindings: Dict[str, FrozenSet[Atom]] = field(default_factory=dict)
    #: identifiers a test file references (empty for non-test files)
    referenced_idents: List[str] = field(default_factory=list)
    imports_hypothesis: bool = False
    #: local import alias -> resolved dotted target (drives re-export
    #: resolution: ``repro.simulation.DCSSimulator`` -> ``...dcs.DCSSimulator``)
    import_map: Dict[str, str] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {
            "version": SUMMARY_FORMAT_VERSION,
            "rel_path": self.rel_path,
            "module": self.module,
            "is_package": self.is_package,
            "functions": [f.to_json() for f in self.functions],
            "classes": [c.to_json() for c in self.classes],
            "exports": self.exports,
            "mutable_globals": list(self.mutable_globals),
            "global_bindings": {
                k: _atoms_to_json(v) for k, v in sorted(self.global_bindings.items())
            },
            "referenced_idents": list(self.referenced_idents),
            "imports_hypothesis": self.imports_hypothesis,
            "import_map": dict(sorted(self.import_map.items())),
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "FileSummary":
        return cls(
            rel_path=data["rel_path"],
            module=data["module"],
            is_package=data["is_package"],
            functions=[FunctionSummary.from_json(f) for f in data["functions"]],
            classes=[ClassInfo.from_json(c) for c in data["classes"]],
            exports=data["exports"],
            mutable_globals=list(data["mutable_globals"]),
            global_bindings={
                k: _atoms_from_json(v) for k, v in data["global_bindings"].items()
            },
            referenced_idents=list(data["referenced_idents"]),
            imports_hypothesis=data["imports_hypothesis"],
            import_map=dict(data["import_map"]),
        )
