"""Whole-program index: merge file summaries, canonicalize names, build
the call graph.

Canonicalization turns the extractor's *tentative* dotted names into the
qualnames of actual project definitions:

* re-exports — ``repro.simulation.DCSSimulator.run`` follows the package
  ``__init__`` import map to ``repro.simulation.dcs.DCSSimulator.run``;
* inheritance — a method referenced through a subclass resolves to the
  base class that actually defines it (depth-first linearization, which
  matches C3 for the single-inheritance hierarchies in this project);
* ``super()`` calls — the symbolic ``<super:Class>.m`` form resolves along
  the linearization *after* ``Class``;
* opaque receivers — ``?.m`` resolves only when exactly one project class
  defines a method ``m`` (anything ambiguous stays unresolved rather than
  guessing).

The call graph is conservative in the usual static-analysis sense: edges
exist only for calls we can resolve, and the rules treat unresolved calls
as taint-through rather than taint-free.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .model import ClassInfo, FileSummary, FunctionSummary

__all__ = ["ProgramIndex"]

_MAX_RESOLVE_STEPS = 16


class ProgramIndex:
    """Symbol table + call graph over a set of :class:`FileSummary`."""

    def __init__(self, files: Sequence[FileSummary]):
        self.files: Dict[str, FileSummary] = {f.rel_path: f for f in files}
        self.by_module: Dict[str, FileSummary] = {}
        self.functions: Dict[str, FunctionSummary] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: function qualname -> repo-relative path of its file
        self.file_of: Dict[str, str] = {}
        self._method_index: Dict[str, List[str]] = {}
        self._canonical_cache: Dict[str, Optional[str]] = {}
        for f in files:
            # later files win on module collisions (should not happen in a
            # well-formed tree; deterministic either way)
            self.by_module[f.module] = f
        for f in files:
            for cls in f.classes:
                self.classes[cls.qualname] = cls
            for fn in f.functions:
                self.functions[fn.qualname] = fn
                self.file_of[fn.qualname] = f.rel_path
        for cls in self.classes.values():
            for m in cls.methods:
                self._method_index.setdefault(m, []).append(f"{cls.qualname}.{m}")
        self._edges: Optional[Dict[str, Set[str]]] = None
        self._sccs: Optional[List[List[str]]] = None

    # -- class hierarchy ----------------------------------------------
    def linearize(self, class_qualname: str) -> List[str]:
        """Depth-first base-class linearization starting at the class."""
        out: List[str] = []
        seen: Set[str] = set()

        def visit(name: str) -> None:
            if name in seen:
                return
            seen.add(name)
            out.append(name)
            cls = self.classes.get(name)
            if cls is None:
                return
            for base in cls.bases:
                resolved = self._resolve_export_chain(base)
                if resolved is not None:
                    visit(resolved)

        visit(class_qualname)
        return out

    def find_method(self, class_qualname: str, method: str) -> Optional[str]:
        for cls_name in self.linearize(class_qualname):
            candidate = f"{cls_name}.{method}"
            if candidate in self.functions:
                return candidate
        return None

    # -- name canonicalization ----------------------------------------
    def _resolve_export_chain(self, name: str) -> Optional[str]:
        """Follow package-``__init__`` re-exports until ``name`` is a
        project definition (function/class) or cannot be rewritten."""
        current = name
        for _ in range(_MAX_RESOLVE_STEPS):
            if current in self.functions or current in self.classes:
                return current
            parts = current.split(".")
            rewritten = None
            # longest module prefix whose import map knows the next part
            for cut in range(len(parts) - 1, 0, -1):
                module = ".".join(parts[:cut])
                f = self.by_module.get(module)
                if f is None:
                    continue
                head, rest = parts[cut], parts[cut + 1 :]
                if head in f.import_map:
                    rewritten = ".".join([f.import_map[head], *rest])
                break
            if rewritten is None or rewritten == current:
                return current if current in self.functions or current in self.classes else None
            current = rewritten
        return None

    def canonical(self, name: Optional[str]) -> Optional[str]:
        """Canonical project qualname for a tentative callee, or ``None``."""
        if name is None:
            return None
        if name in self._canonical_cache:
            return self._canonical_cache[name]
        self._canonical_cache[name] = None  # cycle guard
        result = self._canonical_uncached(name)
        self._canonical_cache[name] = result
        return result

    def _canonical_uncached(self, name: str) -> Optional[str]:
        if name.startswith("?."):
            method = name[2:]
            candidates = self._method_index.get(method, [])
            resolved = {self.canonical(c) for c in candidates}
            resolved.discard(None)
            if len(resolved) == 1:
                return next(iter(resolved))
            return None
        if name.startswith("<super:"):
            head, _, method = name.partition(">.")
            class_name = head[len("<super:") :]
            order = self.linearize(class_name)
            for cls_name in order[1:]:
                candidate = f"{cls_name}.{method}"
                if candidate in self.functions:
                    return candidate
            return None
        direct = self._resolve_export_chain(name)
        if direct is not None:
            if direct in self.functions:
                return direct
            if direct in self.classes:
                return direct  # constructor reference; callers map to __init__
        # Class.method where the method lives on a base
        parts = name.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            cls = self._resolve_export_chain(prefix)
            if cls is not None and cls in self.classes and cut == len(parts) - 1:
                return self.find_method(cls, parts[-1])
        return None

    def callee_function(self, name: Optional[str]) -> Optional[FunctionSummary]:
        """The :class:`FunctionSummary` a call site executes (constructors
        map to ``__init__``), or ``None`` for external/opaque calls."""
        canon = self.canonical(name)
        if canon is None:
            return None
        if canon in self.classes:
            init = self.find_method(canon, "__init__")
            return self.functions.get(init) if init else None
        return self.functions.get(canon)

    def is_class(self, name: Optional[str]) -> bool:
        canon = self.canonical(name)
        return canon is not None and canon in self.classes

    # -- call graph ----------------------------------------------------
    @property
    def edges(self) -> Dict[str, Set[str]]:
        if self._edges is None:
            edges: Dict[str, Set[str]] = {q: set() for q in self.functions}
            for qual, fn in self.functions.items():
                for site in fn.callsites:
                    callee = self.callee_function(site.callee)
                    if callee is not None:
                        edges[qual].add(callee.qualname)
                for fsite in fn.forkmap_sites:
                    if fsite.payload and fsite.payload in self.functions:
                        edges[qual].add(fsite.payload)
            self._edges = edges
        return self._edges

    @property
    def sccs(self) -> List[List[str]]:
        """Tarjan SCCs of the call graph in reverse topological order
        (callees before callers) — iterative, recursion-free."""
        if self._sccs is not None:
            return self._sccs
        edges = self.edges
        index_of: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        sccs: List[List[str]] = []
        counter = [0]

        for root in sorted(edges):
            if root in index_of:
                continue
            work: List[Tuple[str, Iterable[str]]] = [(root, iter(sorted(edges[root])))]
            index_of[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, it = work[-1]
                advanced = False
                for succ in it:
                    if succ not in index_of:
                        index_of[succ] = low[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(sorted(edges[succ]))))
                        advanced = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index_of[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index_of[node]:
                    scc: List[str] = []
                    while True:
                        top = stack.pop()
                        on_stack.discard(top)
                        scc.append(top)
                        if top == node:
                            break
                    sccs.append(scc)
        self._sccs = sccs
        return sccs

    # -- reachability ---------------------------------------------------
    def reachable_from(self, start: str) -> Set[str]:
        edges = self.edges
        seen: Set[str] = set()
        frontier = [start]
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(edges.get(node, ()))
        return seen

    def find_path(self, start: str, targets: Set[str]) -> Optional[List[str]]:
        """Shortest call-graph path from ``start`` to any of ``targets``."""
        edges = self.edges
        if start in targets:
            return [start]
        prev: Dict[str, str] = {}
        frontier = [start]
        seen = {start}
        while frontier:
            nxt: List[str] = []
            for node in frontier:
                for succ in sorted(edges.get(node, ())):
                    if succ in seen:
                        continue
                    seen.add(succ)
                    prev[succ] = node
                    if succ in targets:
                        path = [succ]
                        while path[-1] != start:
                            path.append(prev[path[-1]])
                        return list(reversed(path))
                    nxt.append(succ)
            frontier = nxt
        return None

    # -- binding --------------------------------------------------------
    def bind_callsite(
        self, site: "object", callee: FunctionSummary
    ) -> Dict[str, FrozenSet[Tuple]]:
        """Map callee parameter names to the caller-side atom sets feeding
        them at one call site (positional + keyword + receiver/self)."""
        binding: Dict[str, FrozenSet[Tuple]] = {}
        params = list(callee.params)
        pos_args = list(site.args)
        is_method = callee.class_qualname is not None and params[:1] == ["self"]
        constructs = self.is_class(site.callee)
        if is_method and constructs:
            # Constructor call: the instance is created by the call itself;
            # positional args bind after self.
            binding["self"] = frozenset()
            params = params[1:]
        elif is_method:
            binding["self"] = site.recv
            params = params[1:]
        for name, atoms in zip(params, pos_args):
            binding[name] = binding.get(name, frozenset()) | atoms
        if len(pos_args) > len(params) and params:
            # overflow into *args: attribute the spill to the last param so
            # taint is not dropped
            spill = frozenset().union(*pos_args[len(params) :])
            last = params[-1]
            binding[last] = binding.get(last, frozenset()) | spill
        for kw, atoms in site.kwargs.items():
            if kw == "*":
                for name in [*params, *callee.kwonly]:
                    binding[name] = binding.get(name, frozenset()) | atoms
            else:
                binding[kw] = binding.get(kw, frozenset()) | atoms
        return binding
