"""Interprocedural taint analysis — rule RL010.

Two passes over the :class:`~repro_lint.flow.program.ProgramIndex`:

1. a fixpoint over the SCC condensation (callees first) computing, for
   every function, the taint *kinds* its return value may carry and the
   *parameters* that flow to its return;
2. a sink pass that expands the atoms feeding each determinism-critical
   call site.  Kinds that materialize locally become findings at the sink;
   parameters that reach a sink make the enclosing function a *forwarder*,
   and the finding surfaces at whichever caller actually binds a tainted
   value — with the forwarding chain spelled out in the message.

Sanitizers act during expansion: an order-insensitive reducer
(``sorted``, ``len``, …) strips the order kinds (``set-order``,
``completion-order``) from everything that flowed through it; nothing
strips ``rng``/``clock``/``entropy`` — a sorted list of random numbers is
still random.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..engine import Finding
from .config import SOURCE_KINDS, FlowConfig, SinkSpec
from .model import Atom, FileSummary, FunctionSummary
from .program import ProgramIndex

__all__ = ["run_taint", "TaintAnalysis"]

#: (kind, "qualname:line" provenance)
KindProv = Tuple[str, str]

_ORDER_KINDS = frozenset({"set-order", "completion-order"})
_MAX_PROVENANCE = 6
_MAX_CHAIN = 20


def _cap_kinds(kinds: Set[KindProv]) -> Set[KindProv]:
    if len(kinds) <= _MAX_PROVENANCE * len(SOURCE_KINDS):
        return kinds
    by_kind: Dict[str, List[KindProv]] = {}
    for kp in sorted(kinds):
        by_kind.setdefault(kp[0], []).append(kp)
    capped: Set[KindProv] = set()
    for entries in by_kind.values():
        capped.update(entries[:_MAX_PROVENANCE])
    return capped


class TaintAnalysis:
    """Computes and stores the interprocedural taint facts.

    The machinery is generic over the taint *model*: which kinds exist,
    which kinds sanitizers strip, which rule id findings carry and how
    they are worded.  The defaults encode the determinism analysis
    (RL010); the resource pass instantiates the same engine with a
    float32 model (RL016) by overriding the attributes below.
    """

    def __init__(self, index: ProgramIndex, config: FlowConfig):
        self.index = index
        self.config = config
        self.ret_kinds: Dict[str, Set[KindProv]] = {}
        self.ret_params: Dict[str, Set[str]] = {}
        self._sink_by_name: Dict[str, SinkSpec] = {s.qualname: s for s in config.sinks}
        self._callers: Optional[Dict[str, List[Tuple[FunctionSummary, int]]]] = None
        #: rule id stamped on findings
        self.rule_id: str = "RL010"
        #: advice appended to every finding message
        self.advice: str = (
            "make the input deterministic or hoist it out of the "
            "fingerprinted/serialized data"
        )
        #: kind -> human description used in finding messages
        self.kind_labels: Dict[str, str] = dict(SOURCE_KINDS)
        #: kinds a ``sanitizer`` call site strips from its result
        self.sanitized_kinds: FrozenSet[str] = _ORDER_KINDS
        #: restrict findings to these kinds (``None`` = all kinds)
        self.kinds_of_interest: Optional[FrozenSet[str]] = None
        #: skip sink call sites that are themselves sanitizers (a sink
        #: like ``np.cumsum(x, dtype=np.float64)`` fixes the dtype at the
        #: site, so the float32 operand is harmless there)
        self.skip_sanitized_sinks: bool = False

    def _interesting(self, kinds: Set[KindProv]) -> Set[KindProv]:
        if self.kinds_of_interest is None:
            return kinds
        return {kp for kp in kinds if kp[0] in self.kinds_of_interest}

    # -- atom expansion ------------------------------------------------
    def expand(
        self,
        fn: FunctionSummary,
        atoms: FrozenSet[Atom],
        _active: Optional[Set[Tuple[str, Atom]]] = None,
    ) -> Tuple[Set[KindProv], Set[str]]:
        """Expand ``atoms`` in the context of ``fn``.

        Returns the taint kinds that materialize plus the names of ``fn``'s
        own parameters the atoms depend on.
        """
        active = _active if _active is not None else set()
        kinds: Set[KindProv] = set()
        params: Set[str] = set()
        for atom in atoms:
            key = (fn.qualname, atom)
            if key in active:
                continue
            active.add(key)
            try:
                tag = atom[0]
                if tag == "param":
                    params.add(atom[1])
                elif tag == "source":
                    kinds.add((atom[1], f"{fn.qualname}:{atom[2]}"))
                elif tag == "free":
                    kinds.update(self._expand_free(fn, atom[1], active))
                elif tag == "call":
                    k, p = self._expand_call(fn, atom[1], active)
                    kinds.update(k)
                    params.update(p)
            finally:
                active.discard(key)
        return _cap_kinds(kinds), params

    def _module_summary(self, fn: FunctionSummary) -> Optional[FileSummary]:
        rel = self.index.file_of.get(fn.qualname)
        return self.index.files.get(rel) if rel else None

    def _expand_free(
        self, fn: FunctionSummary, name: str, active: Set[Tuple[str, Atom]]
    ) -> Set[KindProv]:
        """A captured/global name: resolve through the owning module's
        top-level bindings (closure locals of enclosing functions are out
        of reach of the summary model and stay untainted)."""
        f = self._module_summary(fn)
        if f is None:
            return set()
        binding = f.global_bindings.get(name)
        if not binding:
            return set()
        module_fn = self.index.functions.get(f"{f.module}.<module>")
        if module_fn is None:
            return set()
        kinds, _ = self.expand(module_fn, binding, active)
        return kinds

    def _expand_call(
        self, fn: FunctionSummary, call_index: int, active: Set[Tuple[str, Atom]]
    ) -> Tuple[Set[KindProv], Set[str]]:
        if call_index >= len(fn.callsites):
            return set(), set()
        site = fn.callsites[call_index]
        kinds: Set[KindProv] = set()
        params: Set[str] = set()
        if site.source_kind is not None:
            kinds.add((site.source_kind, f"{fn.qualname}:{site.line}"))
        callee = self.index.callee_function(site.callee)
        if callee is None or self.index.is_class(site.callee):
            # external call or constructor: taint passes through every
            # operand into the result / the constructed instance
            pooled: FrozenSet[Atom] = site.recv
            for a in site.args:
                pooled |= a
            for v in site.kwargs.values():
                pooled |= v
            k, p = self.expand(fn, pooled, active)
            kinds.update(k)
            params.update(p)
        else:
            kinds.update(self.ret_kinds.get(callee.qualname, set()))
            passing = self.ret_params.get(callee.qualname, set())
            if passing:
                binding = self.index.bind_callsite(site, callee)
                for pname in passing:
                    atoms = binding.get(pname)
                    if atoms:
                        k, p = self.expand(fn, atoms, active)
                        kinds.update(k)
                        params.update(p)
        if site.sanitizer:
            kinds = {kp for kp in kinds if kp[0] not in self.sanitized_kinds}
        return kinds, params

    # -- global fixpoint -----------------------------------------------
    def solve(self) -> None:
        for scc in self.index.sccs:  # callees before callers
            for _ in range(len(scc) + 2):
                changed = False
                for qual in scc:
                    fn = self.index.functions[qual]
                    kinds, params = self.expand(fn, fn.returns)
                    if kinds != self.ret_kinds.get(qual, set()):
                        self.ret_kinds[qual] = kinds
                        changed = True
                    if params != self.ret_params.get(qual, set()):
                        self.ret_params[qual] = params
                        changed = True
                if not changed:
                    break

    # -- sink pass -----------------------------------------------------
    def _sink_for(self, callee: Optional[str]) -> Optional[SinkSpec]:
        canon = self.index.canonical(callee)
        if canon is None:
            return self._sink_by_name.get(callee) if callee else None
        spec = self._sink_by_name.get(canon)
        if spec is None and canon in self.index.classes:
            spec = self._sink_by_name.get(f"{canon}.__init__")
        return spec

    def _sink_atoms(self, site: "object", spec: SinkSpec) -> FrozenSet[Atom]:
        pooled: FrozenSet[Atom] = frozenset()
        if spec.arg_indices is None:
            pooled |= site.recv
            for a in site.args:
                pooled |= a
        else:
            for i in spec.arg_indices:
                if i < len(site.args):
                    pooled |= site.args[i]
        for v in site.kwargs.values():
            pooled |= v
        return pooled

    def _caller_map(self) -> Dict[str, List[Tuple[FunctionSummary, int]]]:
        if self._callers is None:
            callers: Dict[str, List[Tuple[FunctionSummary, int]]] = {}
            for fn in self.index.functions.values():
                for site in fn.callsites:
                    callee = self.index.callee_function(site.callee)
                    if callee is not None:
                        callers.setdefault(callee.qualname, []).append(
                            (fn, site.index)
                        )
            self._callers = callers
        return self._callers

    def find_sink_flows(self) -> List[Finding]:
        findings: List[Finding] = []
        #: (forwarder qualname, param) -> (sink label, chain of qualnames)
        queue: List[Tuple[str, str, str, Tuple[str, ...]]] = []
        seen_fwd: Set[Tuple[str, str]] = set()

        def emit(fn: FunctionSummary, line: int, kinds: Set[KindProv], label: str,
                 chain: Tuple[str, ...]) -> None:
            rel = self.index.file_of.get(fn.qualname, "<unknown>")
            for kind, prov in sorted(kinds):
                via = ""
                if chain:
                    via = " via " + " -> ".join(_short(q) for q in chain)
                findings.append(
                    Finding(
                        rule=self.rule_id,
                        path=rel,
                        line=line,
                        col=0,
                        message=(
                            f"{self.kind_labels.get(kind, kind)} "
                            f"(from {_short_prov(prov)}) "
                            f"flows into {label}{via}; {self.advice}"
                        ),
                    )
                )

        for fn in self.index.functions.values():
            for site in fn.callsites:
                spec = self._sink_for(site.callee)
                if spec is None:
                    continue
                if site.sanitizer and self.skip_sanitized_sinks:
                    continue
                pooled = self._sink_atoms(site, spec)
                if not pooled:
                    continue
                kinds, params = self.expand(fn, pooled)
                kinds = self._interesting(kinds)
                if kinds:
                    emit(fn, site.line, kinds, spec.label, ())
                for p in params:
                    key = (fn.qualname, p)
                    if key not in seen_fwd:
                        seen_fwd.add(key)
                        queue.append((fn.qualname, p, spec.label, (fn.qualname,)))

        callers = self._caller_map()
        while queue:
            fwd_qual, pname, label, chain = queue.pop()
            if len(chain) >= _MAX_CHAIN:
                continue
            for caller, site_index in callers.get(fwd_qual, ()):  # noqa: B020
                site = caller.callsites[site_index]
                callee = self.index.callee_function(site.callee)
                if callee is None or callee.qualname != fwd_qual:
                    continue
                binding = self.index.bind_callsite(site, callee)
                atoms = binding.get(pname)
                if not atoms:
                    continue
                kinds, params = self.expand(caller, atoms)
                kinds = self._interesting(kinds)
                if kinds:
                    emit(caller, site.line, kinds, label, chain)
                for q in params:
                    key = (caller.qualname, q)
                    if key not in seen_fwd:
                        seen_fwd.add(key)
                        queue.append(
                            (caller.qualname, q, label, (caller.qualname, *chain))
                        )
        return findings


def _short(qualname: str) -> str:
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 2 else qualname


def _short_prov(prov: str) -> str:
    qual, _, line = prov.rpartition(":")
    return f"{_short(qual)}:{line}"


def run_taint(index: ProgramIndex, config: FlowConfig) -> List[Finding]:
    """RL010: nondeterminism reaching a determinism-critical sink."""
    analysis = TaintAnalysis(index, config)
    analysis.solve()
    return analysis.find_sink_flows()
