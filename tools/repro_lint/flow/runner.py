"""Entry points tying extraction, the program index and the flow rules
together for the engine and the CLI."""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..engine import Finding, FileContext, LintConfig
from .cache import SummaryCache, extract_summaries
from .config import FlowOptions
from .forkmap import run_forkmap_rules
from .program import ProgramIndex
from .taint import run_taint

__all__ = ["build_program", "run_flow_rules"]


def build_program(
    contexts: Sequence[FileContext], options: Optional[FlowOptions] = None
) -> ProgramIndex:
    """Extract (or load cached) summaries for the given files and index
    them into one :class:`ProgramIndex`."""
    opts = options or FlowOptions()
    cache = SummaryCache(opts.cache_dir) if opts.cache_dir else None
    items = [(ctx.rel_path, ctx.source, ctx.is_test_file) for ctx in contexts]
    summaries = extract_summaries(items, opts.config, jobs=opts.jobs, cache=cache)
    return ProgramIndex(summaries)


def run_flow_rules(
    contexts: Sequence[FileContext],
    config: Optional[LintConfig] = None,
    options: Optional[FlowOptions] = None,
) -> List[Finding]:
    """Run the whole-program rules (RL010–RL013) over the given files.

    Returns *raw* findings — the engine applies suppression comments
    centrally, exactly as for the per-file rules.
    """
    cfg = config or LintConfig()
    opts = options or FlowOptions()
    wanted = [r for r in ("RL010", "RL011", "RL012", "RL013") if cfg.enabled(r)]
    if not wanted:
        return []
    index = build_program(contexts, opts)
    findings: List[Finding] = []
    if "RL010" in wanted:
        findings.extend(run_taint(index, opts.config))
    if any(r in wanted for r in ("RL011", "RL012", "RL013")):
        findings.extend(
            f
            for f in run_forkmap_rules(index, opts.config)
            if f.rule in wanted
        )
    return findings
