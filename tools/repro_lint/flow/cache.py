"""Content-addressed summary cache + parallel extraction.

The extraction pass is the only part of the flow analysis that touches an
AST, so it is the only part worth caching or parallelizing.  Summaries are
keyed by ``sha256(version || rel_path || source)``: any edit to a file —
or any change to the summary format — misses for exactly that file, and
everything else is served from disk.  A warm run therefore does no parsing
at all, which is what keeps ``repro-lint --flow`` inside its sub-2-second
budget on re-runs.

Cache entries are plain JSON, one file per summary, written atomically
(tmp + rename) so concurrent lint runs sharing a cache directory cannot
observe torn files.  Corrupt or version-skewed entries degrade to a miss.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .config import FlowConfig
from .extract import extract_file
from .model import SUMMARY_FORMAT_VERSION, FileSummary

__all__ = ["SummaryCache", "extract_summaries"]


class SummaryCache:
    """Content-addressed store of :class:`FileSummary` JSON blobs."""

    def __init__(self, cache_dir: str):
        self.root = Path(cache_dir)
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key_for(rel_path: str, source: str) -> str:
        h = hashlib.sha256()
        h.update(f"repro-flow-v{SUMMARY_FORMAT_VERSION}\n".encode())
        h.update(rel_path.encode())
        h.update(b"\n")
        h.update(source.encode())
        return h.hexdigest()

    def _path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def load(self, rel_path: str, source: str) -> Optional[FileSummary]:
        path = self._path_for(self.key_for(rel_path, source))
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        try:
            if data.get("version") != SUMMARY_FORMAT_VERSION:
                self.misses += 1
                return None
            summary = FileSummary.from_json(data)
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        if summary.rel_path != rel_path:
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def store(self, rel_path: str, source: str, summary: FileSummary) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path_for(self.key_for(rel_path, source))
        payload = json.dumps(summary.to_json(), sort_keys=True)
        fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass


def _extract_one(item: Tuple[str, str, bool], config: FlowConfig) -> FileSummary:
    rel_path, source, is_test = item
    return extract_file(rel_path, source, config=config, is_test=is_test)


def _worker(payload: Tuple[Tuple[str, str, bool], FlowConfig]) -> Dict:
    item, config = payload
    return _extract_one(item, config).to_json()


def extract_summaries(
    items: Sequence[Tuple[str, str, bool]],
    config: FlowConfig,
    jobs: int = 1,
    cache: Optional[SummaryCache] = None,
) -> List[FileSummary]:
    """Extract summaries for ``(rel_path, source, is_test)`` triples,
    serving cache hits first and fanning the misses out over ``jobs``
    processes (fork start method; serial fallback when unavailable)."""
    summaries: Dict[int, FileSummary] = {}
    misses: List[Tuple[int, Tuple[str, str, bool]]] = []
    for i, item in enumerate(items):
        cached = cache.load(item[0], item[1]) if cache is not None else None
        if cached is not None:
            summaries[i] = cached
        else:
            misses.append((i, item))

    if misses:
        extracted: List[FileSummary]
        if jobs > 1 and len(misses) > 1:
            extracted = _extract_parallel([m[1] for m in misses], config, jobs)
        else:
            extracted = [_extract_one(m[1], config) for m in misses]
        for (i, item), summary in zip(misses, extracted):
            summaries[i] = summary
            if cache is not None:
                cache.store(item[0], item[1], summary)
    return [summaries[i] for i in range(len(items))]


def _extract_parallel(
    items: List[Tuple[str, str, bool]], config: FlowConfig, jobs: int
) -> List[FileSummary]:
    try:
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
    except (ImportError, ValueError):
        return [_extract_one(item, config) for item in items]
    try:
        with ctx.Pool(processes=min(jobs, len(items))) as pool:
            blobs = pool.map(_worker, [(item, config) for item in items])
        return [FileSummary.from_json(b) for b in blobs]
    except (OSError, ValueError):
        return [_extract_one(item, config) for item in items]
