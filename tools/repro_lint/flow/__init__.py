"""Whole-program analysis layer (``repro-flow``) on top of the lint engine.

The per-file rules (RL001–RL009) see one module at a time; the properties
this package checks live *between* modules: nondeterminism flowing through
call chains into a cache key or a checkpoint snapshot, fork_map payloads
mutating state they share with the parent process, a payload that fans out
again.  The pipeline is

1. **extract** — one cacheable, file-local pass per module producing a
   :class:`~repro_lint.flow.model.FileSummary` (defs, resolved call sites,
   name-level dataflow atoms, mutation facts);
2. **index** — merge the summaries into a
   :class:`~repro_lint.flow.program.ProgramIndex` (project symbol table,
   method canonicalization over base classes, call graph, Tarjan SCCs);
3. **rules** — the whole-program rules RL010–RL013 and the contract
   coverage audit run over the index.

Summaries are content-addressed (:mod:`repro_lint.flow.cache`), so warm
re-runs skip extraction entirely; ``--jobs`` parallelizes the cold pass.
"""

from __future__ import annotations

from .audit import ContractAudit, audit_contracts
from .config import FlowConfig, FlowOptions
from .program import ProgramIndex
from .runner import build_program, run_flow_rules

__all__ = [
    "ContractAudit",
    "FlowConfig",
    "FlowOptions",
    "ProgramIndex",
    "audit_contracts",
    "build_program",
    "run_flow_rules",
]
