"""``fork_map`` safety rules — RL011, RL012, RL013.

``repro._parallel.fork_map`` runs its payload in forked worker processes:
the payload's closure is snapshotted copy-on-write, results come back by
pickle, and any write a worker makes to state shared with the parent is
silently lost (or, worse, survives on the serial fallback path only —
the classic "works with jobs=1" heisenbug).  These rules check the three
static preconditions of that contract:

RL011
    the payload captures something that cannot round-trip a fork fan-out:
    a module-level mutable container (each worker sees its own copy) or an
    unpicklable resource (file handle, lock, DB connection);
RL012
    the payload — directly or through anything it calls — writes to state
    it shares with the parent process (captured objects, ``self``, module
    globals);
RL013
    the payload can reach another ``fork_map`` call: nested fan-out raises
    at runtime, so catching it statically turns a crash into a lint line.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..engine import Finding
from .config import FlowConfig
from .model import ForkMapSite, FunctionSummary
from .program import ProgramIndex

__all__ = ["run_forkmap_rules"]

_MUT_FIXPOINT_ROUNDS = 12


def _transitive_mutated_params(index: ProgramIndex) -> Dict[str, Set[str]]:
    """For every function, the parameters whose object state may be written
    by the function itself or by anything it passes them to."""
    mut: Dict[str, Set[str]] = {
        q: set(fn.mutated_params) for q, fn in index.functions.items()
    }
    for _ in range(_MUT_FIXPOINT_ROUNDS):
        changed = False
        for qual, fn in index.functions.items():
            for site in fn.callsites:
                callee = index.callee_function(site.callee)
                if callee is None:
                    continue
                callee_mut = mut.get(callee.qualname)
                if not callee_mut:
                    continue
                binding = index.bind_callsite(site, callee)
                for pname in callee_mut:
                    for atom in binding.get(pname, frozenset()):
                        if atom[0] == "param" and atom[1] not in mut[qual]:
                            mut[qual].add(atom[1])
                            changed = True
        if not changed:
            break
    return mut


def _module_level_frees(index: ProgramIndex, fn: FunctionSummary) -> Set[str]:
    """The subset of ``fn.mutated_frees`` that are module-level names —
    writes to those leak across the fork boundary.  Frees that are locals
    of an enclosing function belong to the worker's own (copied) frame and
    are excluded."""
    rel = index.file_of.get(fn.qualname)
    f = index.files.get(rel) if rel else None
    if f is None:
        return set(fn.mutated_frees)
    module_names = (
        set(f.global_bindings) | set(f.mutable_globals) | set(f.import_map)
    )
    return {n for n in fn.mutated_frees if n in module_names}


def _shared_write_reasons(
    index: ProgramIndex,
    payload: FunctionSummary,
    mut_params: Dict[str, Set[str]],
) -> List[str]:
    """Human-readable reasons the payload writes shared state."""
    reasons: List[str] = []
    captured_writes = set(payload.mutated_frees)
    if captured_writes:
        names = ", ".join(sorted(captured_writes))
        reasons.append(f"writes captured state ({names}) directly")
    for site in payload.callsites:
        callee = index.callee_function(site.callee)
        if callee is None:
            continue
        callee_mut = mut_params.get(callee.qualname, set())
        if callee_mut:
            binding = index.bind_callsite(site, callee)
            for pname in sorted(callee_mut):
                # only *captured* values are shared with the parent; the
                # payload's own parameter is the per-task index, which is
                # worker-local by construction
                shared = sorted(
                    a[1]
                    for a in binding.get(pname, frozenset())
                    if a[0] == "free"
                )
                if shared:
                    reasons.append(
                        f"passes captured {', '.join(shared)} to "
                        f"{_short(callee.qualname)} which mutates its "
                        f"'{pname}' parameter"
                    )
        # transitive module-global writes anywhere beneath the payload
    for reached_qual in sorted(index.reachable_from(payload.qualname)):
        reached = index.functions.get(reached_qual)
        if reached is None or reached.qualname == payload.qualname:
            continue
        globals_written = _module_level_frees(index, reached)
        if globals_written:
            reasons.append(
                f"reaches {_short(reached_qual)} which writes module "
                f"state ({', '.join(sorted(globals_written))})"
            )
    return reasons


def _short(qualname: str) -> str:
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 2 else qualname


def run_forkmap_rules(index: ProgramIndex, config: FlowConfig) -> List[Finding]:
    findings: List[Finding] = []
    mut_params = _transitive_mutated_params(index)

    # functions that *contain* a fork_map call (targets for RL013)
    fanout_functions: Set[str] = {
        qual
        for qual, fn in index.functions.items()
        if fn.forkmap_sites
        or any(
            site.callee is not None
            and index.canonical(site.callee) is None
            and site.callee in config.fork_map_names
            for site in fn.callsites
        )
    }
    # exclude the parallel runtimes themselves — fork_map's helpers and the
    # distributed engine's submission/driver layer are the machinery, not a
    # nested fan-out (calling *into* them from a payload is still caught:
    # the calling payload records its own fan-out site)
    fanout_functions = {
        q
        for q in fanout_functions
        if not q.startswith(("repro._parallel.", "repro.distributed."))
    }

    for fn in index.functions.values():
        rel = index.file_of.get(fn.qualname, "<unknown>")
        for site in fn.forkmap_sites:
            # RL011 — captures that do not survive the fork fan-out
            if site.captured_mutable_globals:
                names = ", ".join(site.captured_mutable_globals)
                findings.append(
                    Finding(
                        rule="RL011",
                        path=rel,
                        line=site.line,
                        col=site.col,
                        message=(
                            f"fork_map payload captures module-global mutable "
                            f"state ({names}); workers see copy-on-write "
                            f"copies, so updates diverge between jobs=1 and "
                            f"jobs>1 — pass the data per task or make it "
                            f"immutable"
                        ),
                    )
                )
            for name, what in site.captured_unpicklable:
                findings.append(
                    Finding(
                        rule="RL011",
                        path=rel,
                        line=site.line,
                        col=site.col,
                        message=(
                            f"fork_map payload captures {what} ('{name}'); "
                            f"it cannot cross the fork/pickle boundary — "
                            f"open the resource inside the payload instead"
                        ),
                    )
                )
            payload = (
                index.functions.get(site.payload) if site.payload else None
            )
            if payload is None:
                continue
            # RL012 — worker-side mutation of shared state
            for reason in _shared_write_reasons(index, payload, mut_params):
                findings.append(
                    Finding(
                        rule="RL012",
                        path=rel,
                        line=site.line,
                        col=site.col,
                        message=(
                            f"fork_map payload {_short(payload.qualname)} "
                            f"{reason}; worker writes are lost on fork and "
                            f"survive only on the serial fallback — return "
                            f"results instead of mutating shared state"
                        ),
                    )
                )
            # RL013 — statically detectable nested fork_map
            path = index.find_path(payload.qualname, fanout_functions)
            if path is not None and not fn.qualname.startswith(
                ("repro._parallel.", "repro.distributed.")
            ):
                chain = " -> ".join(_short(q) for q in path)
                findings.append(
                    Finding(
                        rule="RL013",
                        path=rel,
                        line=site.line,
                        col=site.col,
                        message=(
                            f"fork_map payload can fan out again "
                            f"({chain}); nested fork_map raises at runtime "
                            f"— flatten the work items or run the inner "
                            f"level serially"
                        ),
                    )
                )
    return findings
