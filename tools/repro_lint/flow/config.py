"""Configuration of the whole-program analysis: sources, sinks, sanitizers.

Everything here is data, not code, so the test-suite can lint synthetic
projects with the production taint model and the production code can be
analyzed with a tightened or loosened one.  Qualified names follow the
resolution of :mod:`repro_lint.flow.extract`: project modules are rooted at
the package name (``repro.core.cache.fingerprint``), third-party ones at
their import root (``numpy.random.default_rng``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = ["SinkSpec", "FlowConfig", "FlowOptions", "SOURCE_KINDS"]

#: taint kinds with the human description used in finding messages
SOURCE_KINDS: Dict[str, str] = {
    "rng": "global/unseeded RNG draw",
    "clock": "wall-clock read",
    "entropy": "OS entropy read",
    "set-order": "set/hash iteration order",
    "completion-order": "worker completion order",
}


@dataclass(frozen=True)
class SinkSpec:
    """One determinism-critical call target.

    ``arg_indices`` selects which positional arguments are checked
    (``None`` = every argument, receiver included); keyword arguments are
    always checked.
    """

    qualname: str
    label: str
    arg_indices: Optional[Tuple[int, ...]] = None


def _default_sinks() -> Tuple[SinkSpec, ...]:
    return (
        SinkSpec(
            "repro.core.cache.fingerprint",
            "SolverCache fingerprint construction",
        ),
        SinkSpec(
            "repro.core.cache.SolverCache.get_or_create",
            "SolverCache key",
            arg_indices=(0,),
        ),
        SinkSpec(
            "repro._checkpoint.checkpoint_key",
            "checkpoint key fingerprint",
        ),
        SinkSpec(
            "repro._checkpoint.CheckpointStore.put",
            "repro-checkpoint-v1 snapshot",
        ),
        SinkSpec(
            "repro._checkpoint.CheckpointStore.__init__",
            "checkpoint store key",
            arg_indices=(1,),
        ),
        SinkSpec(
            "repro.simulation.trace.Trace.record",
            "trace serialization",
        ),
        SinkSpec(
            "repro._parallel.fork_map",
            "fork_map task payload",
        ),
        SinkSpec(
            "repro._parallel.publish_arrays",
            "shared-memory payload table",
        ),
    )


#: calls whose *result* carries the taint kind (matched on resolved name;
#: a trailing dot matches the whole namespace)
_DEFAULT_SOURCE_CALLS: Tuple[Tuple[str, str], ...] = (
    ("time.time", "clock"),
    ("time.time_ns", "clock"),
    ("time.monotonic", "clock"),
    ("time.monotonic_ns", "clock"),
    ("time.perf_counter", "clock"),
    ("time.perf_counter_ns", "clock"),
    ("time.process_time", "clock"),
    ("time.process_time_ns", "clock"),
    ("datetime.datetime.now", "clock"),
    ("datetime.datetime.utcnow", "clock"),
    ("datetime.datetime.today", "clock"),
    ("datetime.date.today", "clock"),
    ("os.urandom", "entropy"),
    ("uuid.uuid1", "entropy"),
    ("uuid.uuid4", "entropy"),
    ("secrets.", "entropy"),
    ("concurrent.futures.as_completed", "completion-order"),
    ("multiprocessing.pool.IMapUnorderedIterator", "completion-order"),
)

#: order-insensitive reducers: applying one strips *order* taint (the value
#: of ``sorted(s)`` / ``len(s)`` does not depend on iteration order), but a
#: sorted list of random numbers is still random, so rng/clock/entropy pass
#: through
_DEFAULT_ORDER_SANITIZERS: Tuple[str, ...] = (
    "sorted",
    "len",
    "sum",
    "min",
    "max",
    "frozenset",  # set -> set conversions do not surface an order
    "set",
    "numpy.sort",
    "numpy.unique",
)


@dataclass
class FlowConfig:
    """The taint model and project layout knobs of the flow analysis."""

    #: resolved call name (or ``prefix.`` namespace) -> taint kind
    source_calls: Tuple[Tuple[str, str], ...] = _DEFAULT_SOURCE_CALLS
    #: ``np.random`` attributes that construct explicit generators and are
    #: therefore *not* treated as global-RNG sources
    rng_constructors: Tuple[str, ...] = (
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    )
    sinks: Tuple[SinkSpec, ...] = field(default_factory=_default_sinks)
    order_sanitizers: Tuple[str, ...] = _DEFAULT_ORDER_SANITIZERS
    #: resolved names of fan-out primitives (RL011–RL013): the first
    #: positional argument of each is a payload that executes in a worker
    #: process, so the fork_map payload contract applies to it verbatim —
    #: this covers both the flat ``fork_map`` fan-out and the distributed
    #: engine's task-submission entry points
    fork_map_names: Tuple[str, ...] = (
        "repro._parallel.fork_map",
        "repro.distributed.tasks.make_task",
        "repro.distributed.tasks.TaskGraph.submit",
        "repro.distributed.sweeps.distributed_sweep",
        "repro.distributed.sweeps.distributed_campaign_cells",
    )
    #: mutating container methods that count as worker-side writes when
    #: invoked on state shared with the parent process (RL012)
    mutating_methods: Tuple[str, ...] = (
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
    )
    #: constructors whose instances do not survive pickling / fork fan-out
    unpicklable_constructors: Tuple[Tuple[str, str], ...] = (
        ("open", "an open file handle"),
        ("threading.Lock", "a threading lock"),
        ("threading.RLock", "a threading lock"),
        ("threading.Condition", "a threading condition"),
        ("threading.Event", "a threading event"),
        ("sqlite3.connect", "a database connection"),
    )
    #: package directories (repo-relative) holding kernel entry points the
    #: contract audit cross-references
    kernel_zones: Tuple[str, ...] = (
        "src/repro/core/",
        "src/repro/distributions/",
    )
    #: contract-check namespace the audit looks for along call chains
    contracts_namespace: str = "repro._contracts."
    #: directories whose files count as test code for the audit
    test_dirs: Tuple[str, ...] = ("tests/",)


@dataclass
class FlowOptions:
    """Runtime switches (CLI-facing) for one flow-analysis invocation."""

    enabled: bool = True
    #: worker processes for cold summary extraction (<=1 = serial)
    jobs: int = 1
    #: directory for content-addressed summaries (``None`` disables caching)
    cache_dir: Optional[str] = None
    config: FlowConfig = field(default_factory=FlowConfig)
