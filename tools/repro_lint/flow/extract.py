"""File-local extraction: AST -> :class:`~repro_lint.flow.model.FileSummary`.

One pass per module, no knowledge of any other module required — that is
the property that makes summaries content-addressable.  Cross-module facts
(is this dotted name a class? does that method live on a base?) are left
symbolic here and resolved by :mod:`repro_lint.flow.program`.

The extractor performs three jobs at once while walking each function:

* **name resolution** — imports (absolute *and* relative, unlike the
  per-file :class:`repro_lint.imports.ImportTracker`), lexical scope
  chains, ``self`` receivers, and a light type inference for locals
  (parameter annotations, ``x: T`` annotations, ``x = ClassName(...)``
  constructor results) so attribute calls like ``sim.run(...)`` resolve to
  ``repro.simulation.dcs.DCSSimulator.run``;
* **dataflow atoms** — a flow-insensitive, name-level fixpoint mapping each
  local to the set of parameters / sources / call results that may feed it;
* **mutation & fan-out facts** — stores through parameters or captured
  names, and ``fork_map`` call sites with their payload resolved.
"""

from __future__ import annotations

import ast
import builtins
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .config import FlowConfig
from .model import (
    Atom,
    CallSite,
    ClassInfo,
    FileSummary,
    ForkMapSite,
    FunctionSummary,
    cap_atoms,
)

__all__ = ["module_name_of", "extract_file"]

_BUILTIN_NAMES = frozenset(dir(builtins))

#: roots stripped from repo-relative paths when deriving module names:
#: ``src/repro/core/cache.py`` -> ``repro.core.cache``
_SOURCE_ROOTS = ("src/", "tools/")

_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "OrderedDict", "defaultdict", "deque", "Counter"}
)

#: calls that materialize their argument's iteration order into data
_ORDER_MATERIALIZERS = frozenset({"list", "tuple", "enumerate", "iter", "next", "reversed"})

_ENV_PASSES = 4  # fixpoint bound for the per-function dataflow


def module_name_of(rel_path: str) -> Tuple[str, bool]:
    """``(module_name, is_package)`` for a repo-relative POSIX path."""
    path = rel_path
    for root in _SOURCE_ROOTS:
        if path.startswith(root):
            path = path[len(root) :]
            break
    if path.endswith(".py"):
        path = path[: -len(".py")]
    parts = [p for p in path.split("/") if p]
    is_package = bool(parts) and parts[-1] == "__init__"
    if is_package:
        parts = parts[:-1]
    return ".".join(parts) if parts else "<root>", is_package


class _Imports:
    """Per-module import map with relative-import resolution."""

    def __init__(self, tree: ast.Module, module: str, is_package: bool):
        pkg_parts = module.split(".") if is_package else module.split(".")[:-1]
        self.names: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.names[local] = alias.name if alias.asname else alias.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = pkg_parts[: len(pkg_parts) - (node.level - 1)]
                    head = ".".join(base + ([node.module] if node.module else []))
                else:
                    head = node.module or ""
                if not head:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.names[local] = f"{head}.{alias.name}"


class _Scope:
    """One lexical function (or module) scope."""

    def __init__(
        self,
        qualname: str,
        node: Optional[ast.AST],
        parent: Optional["_Scope"],
        class_qualname: Optional[str],
    ):
        self.qualname = qualname
        self.node = node
        self.parent = parent
        self.class_qualname = class_qualname
        self.locals: Set[str] = set()
        self.env: Dict[str, FrozenSet[Atom]] = {}
        #: local name -> resolved class qualname (annotation / constructor)
        self.types: Dict[str, str] = {}
        #: local name -> "the binding is a set" (for iteration-order taint)
        self.set_typed: Set[str] = set()
        #: nested function definitions by local name
        self.nested: Dict[str, str] = {}
        self.global_decls: Set[str] = set()

    def lookup_type(self, name: str) -> Optional[str]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.types:
                return scope.types[name]
            if name in scope.locals:
                return None  # shadowed without a known type
            scope = scope.parent
        return None

    def lookup_set_typed(self, name: str) -> bool:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.set_typed:
                return True
            if name in scope.locals:
                return False
            scope = scope.parent
        return False

    def lookup_nested(self, name: str) -> Optional[str]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.nested:
                return scope.nested[name]
            scope = scope.parent
        return None


def _collect_locals(node: ast.AST) -> Set[str]:
    """Names bound inside one function body (without descending into
    nested function definitions)."""
    names: Set[str] = set()

    class V(ast.NodeVisitor):
        def visit_Name(self, n: ast.Name) -> None:
            if isinstance(n.ctx, (ast.Store, ast.Del)):
                names.add(n.id)

        def visit_FunctionDef(self, n: ast.FunctionDef) -> None:
            names.add(n.name)

        def visit_AsyncFunctionDef(self, n: ast.AsyncFunctionDef) -> None:
            names.add(n.name)

        def visit_ClassDef(self, n: ast.ClassDef) -> None:
            names.add(n.name)

        def visit_Lambda(self, n: ast.Lambda) -> None:
            pass  # lambda params are not bindings of the enclosing scope

        def visit_Import(self, n: ast.Import) -> None:
            for alias in n.names:
                names.add(alias.asname or alias.name.split(".")[0])

        def visit_ImportFrom(self, n: ast.ImportFrom) -> None:
            for alias in n.names:
                if alias.name != "*":
                    names.add(alias.asname or alias.name)

    body = node.body if isinstance(node.body, list) else [node.body]
    for stmt in body:
        V().visit(stmt)
    return names


def _param_names(args: ast.arguments) -> Tuple[List[str], List[str]]:
    positional = [a.arg for a in [*args.posonlyargs, *args.args]]
    kwonly = [a.arg for a in args.kwonlyargs]
    return positional, kwonly


def _annotation_to_name(node: Optional[ast.expr]) -> Optional[str]:
    """Dotted name inside an annotation, unwrapping Optional/quoted forms."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        if text.replace(".", "").replace("_", "").isalnum():
            return text
        return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        parts: List[str] = []
        cur: ast.expr = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if isinstance(cur, ast.Name):
            parts.append(cur.id)
            return ".".join(reversed(parts))
        return None
    if isinstance(node, ast.Subscript):
        head = _annotation_to_name(node.value)
        if head in ("Optional", "typing.Optional", "Union", "typing.Union"):
            inner = node.slice
            elems = inner.elts if isinstance(inner, ast.Tuple) else [inner]
            for e in elems:
                name = _annotation_to_name(e)
                if name not in (None, "None"):
                    return name
    return None


class _Extractor:
    def __init__(self, rel_path: str, tree: ast.Module, config: FlowConfig, is_test: bool):
        self.rel_path = rel_path
        self.tree = tree
        self.config = config
        self.is_test = is_test
        self.module, self.is_package = module_name_of(rel_path)
        self.imports = _Imports(tree, self.module, self.is_package)
        self.functions: List[FunctionSummary] = []
        self.classes: List[ClassInfo] = []
        self.module_defs: Dict[str, str] = {}  # local name -> "func" | "class"
        self.mutable_globals: Set[str] = set()
        self.exports: Optional[List[str]] = None
        self._source_exact: Dict[str, str] = {}
        self._source_prefix: List[Tuple[str, str]] = []
        for name, kind in config.source_calls:
            if name.endswith("."):
                self._source_prefix.append((name, kind))
            else:
                self._source_exact[name] = kind

    # -- top level -----------------------------------------------------
    def run(self) -> FileSummary:
        for stmt in self.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.module_defs[stmt.name] = "func"
            elif isinstance(stmt, ast.ClassDef):
                self.module_defs[stmt.name] = "class"
        self._scan_module_level()
        module_scope = _Scope(f"{self.module}.<module>", self.tree, None, None)
        body_stmts = [
            s
            for s in self.tree.body
            if not isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        ]
        module_scope.locals = (
            set(self.module_defs)
            | set(self.imports.names)
            | _collect_locals(ast.Module(body=body_stmts, type_ignores=[]))
        )
        self._summarize_body(module_scope, body_stmts, params=[], kwonly=[], line=1)
        for stmt in self.tree.body:
            self._walk_definitions(stmt, module_scope, class_qualname=None)
        global_bindings = {
            name: atoms
            for name, atoms in module_scope.env.items()
            if atoms and name not in self.module_defs
        }
        referenced: List[str] = []
        imports_hypothesis = False
        if self.is_test:
            seen: Set[str] = set()
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Name):
                    seen.add(node.id)
                elif isinstance(node, ast.Attribute):
                    seen.add(node.attr)
            referenced = sorted(seen)
        for target in self.imports.names.values():
            if target == "hypothesis" or target.startswith("hypothesis."):
                imports_hypothesis = True
        return FileSummary(
            rel_path=self.rel_path,
            module=self.module,
            is_package=self.is_package,
            functions=self.functions,
            import_map=dict(self.imports.names),
            classes=self.classes,
            exports=self.exports,
            mutable_globals=sorted(self.mutable_globals),
            global_bindings=global_bindings,
            referenced_idents=referenced,
            imports_hypothesis=imports_hypothesis,
        )

    def _scan_module_level(self) -> None:
        for stmt in self.tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None:
                continue
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if "__all__" in names and isinstance(value, (ast.List, ast.Tuple)):
                self.exports = [
                    e.value
                    for e in value.elts
                    if isinstance(e, ast.Constant) and isinstance(e.value, str)
                ]
                continue
            if self._is_mutable_container(value):
                self.mutable_globals.update(names)

    def _is_mutable_container(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = self._callee_name_only(node.func)
            return name is not None and name.split(".")[-1] in _MUTABLE_CONSTRUCTORS
        return False

    def _callee_name_only(self, func: ast.expr) -> Optional[str]:
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            return f"{func.value.id}.{func.attr}"
        return None

    # -- definition walking --------------------------------------------
    def _walk_definitions(
        self, stmt: ast.stmt, parent_scope: _Scope, class_qualname: Optional[str]
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            owner = class_qualname or (
                parent_scope.qualname.rsplit(".<module>", 1)[0]
                if parent_scope.parent is None
                else f"{parent_scope.qualname}.<locals>"
            )
            qualname = f"{owner}.{stmt.name}"
            self._summarize_function(stmt, qualname, parent_scope, class_qualname)
        elif isinstance(stmt, ast.ClassDef):
            cls_qual = f"{self.module}.{stmt.name}"
            bases = []
            for base in stmt.bases:
                resolved = self._resolve_dotted(base, parent_scope)
                if resolved:
                    bases.append(resolved)
            methods = [
                s.name
                for s in stmt.body
                if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef))
            ]
            self.classes.append(
                ClassInfo(qualname=cls_qual, line=stmt.lineno, bases=bases, methods=methods)
            )
            for sub in stmt.body:
                self._walk_definitions(sub, parent_scope, class_qualname=cls_qual)

    def _summarize_function(
        self,
        node: ast.AST,
        qualname: str,
        parent_scope: _Scope,
        class_qualname: Optional[str],
    ) -> FunctionSummary:
        args = node.args
        params, kwonly = _param_names(args)
        scope = _Scope(qualname, node, parent_scope, class_qualname or parent_scope.class_qualname)
        if class_qualname is not None:
            scope.class_qualname = class_qualname
        body = node.body if isinstance(node.body, list) else [node.body]
        scope.locals = _collect_locals(node) | set(params) | set(kwonly)
        if args.vararg:
            scope.locals.add(args.vararg.arg)
        if args.kwarg:
            scope.locals.add(args.kwarg.arg)
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            ann = _annotation_to_name(arg.annotation)
            if ann:
                resolved = self._resolve_name_str(ann, parent_scope)
                if resolved:
                    scope.types[arg.arg] = resolved
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope.nested[stmt.name] = f"{qualname}.<locals>.{stmt.name}"
        summary = self._summarize_body(
            scope,
            body,
            params=params,
            kwonly=kwonly,
            line=getattr(node, "lineno", 1),
            has_vararg=args.vararg is not None,
            has_kwarg=args.kwarg is not None,
            class_qualname=class_qualname,
        )
        # nested defs are summarized with the (now-populated) parent scope
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._summarize_function(
                    stmt, scope.nested[stmt.name], scope, class_qualname=None
                )
        return summary

    # -- body summarization --------------------------------------------
    def _summarize_body(
        self,
        scope: _Scope,
        body: Sequence[ast.stmt],
        params: List[str],
        kwonly: List[str],
        line: int,
        has_vararg: bool = False,
        has_kwarg: bool = False,
        class_qualname: Optional[str] = None,
    ) -> FunctionSummary:
        summary = FunctionSummary(
            qualname=scope.qualname,
            line=line,
            params=params,
            kwonly=kwonly,
            has_vararg=has_vararg,
            has_kwarg=has_kwarg,
            class_qualname=class_qualname,
        )
        for p in [*params, *kwonly]:
            scope.env[p] = frozenset({("param", p)})
        mutated_params: Set[str] = set()
        mutated_frees: Set[str] = set()
        returns: Set[Atom] = set()
        callsites: List[CallSite] = []
        lambda_names: Dict[int, str] = {}

        walker = _BodyWalker(
            self,
            scope,
            summary,
            mutated_params,
            mutated_frees,
            returns,
            callsites,
            lambda_names,
        )
        for _ in range(_ENV_PASSES):
            walker.reset_pass()
            for stmt in body:
                walker.visit_stmt(stmt)
            if not walker.changed:
                break
        summary.returns = cap_atoms(frozenset(returns))
        summary.callsites = callsites
        summary.mutated_params = sorted(mutated_params)
        summary.mutated_frees = sorted(mutated_frees)
        self.functions.append(summary)
        # summarize lambdas encountered in this body as their own functions
        for lam, lam_qual in walker.lambdas:
            lam_scope = _Scope(lam_qual, lam, scope, scope.class_qualname)
            lam_params, lam_kwonly = _param_names(lam.args)
            lam_scope.locals = set(lam_params) | set(lam_kwonly)
            lam_summary = FunctionSummary(
                qualname=lam_qual,
                line=lam.lineno,
                params=lam_params,
                kwonly=lam_kwonly,
                has_vararg=lam.args.vararg is not None,
                has_kwarg=lam.args.kwarg is not None,
                class_qualname=None,
            )
            for p in [*lam_params, *lam_kwonly]:
                lam_scope.env[p] = frozenset({("param", p)})
            lam_mut_p: Set[str] = set()
            lam_mut_f: Set[str] = set()
            lam_ret: Set[Atom] = set()
            lam_calls: List[CallSite] = []
            lam_walker = _BodyWalker(
                self, lam_scope, lam_summary, lam_mut_p, lam_mut_f, lam_ret, lam_calls, {}
            )
            for _ in range(2):
                lam_walker.reset_pass()
                lam_ret.update(lam_walker.eval_expr(lam.body))
                if not lam_walker.changed:
                    break
            lam_summary.returns = cap_atoms(frozenset(lam_ret))
            lam_summary.callsites = lam_calls
            lam_summary.mutated_params = sorted(lam_mut_p)
            lam_summary.mutated_frees = sorted(lam_mut_f)
            self.functions.append(lam_summary)
        return summary

    # -- name resolution ----------------------------------------------
    def _resolve_name_str(self, dotted: str, scope: _Scope) -> Optional[str]:
        parts = dotted.split(".")
        head = parts[0]
        nested = scope.lookup_nested(head)
        if nested is not None:
            return ".".join([nested, *parts[1:]])
        if head in self.module_defs:
            return ".".join([f"{self.module}.{head}", *parts[1:]])
        if head in self.imports.names:
            return ".".join([self.imports.names[head], *parts[1:]])
        if head in _BUILTIN_NAMES and len(parts) == 1:
            return head
        return None

    def _resolve_dotted(self, node: ast.expr, scope: _Scope) -> Optional[str]:
        """Resolve a Name/Attribute chain to a dotted name (best effort)."""
        parts: List[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        parts.reverse()
        if isinstance(cur, ast.Name):
            head = cur.id
            if head == "self" and scope.class_qualname and len(parts) == 1:
                return f"{scope.class_qualname}.{parts[0]}"
            local_type = scope.lookup_type(head)
            if local_type is not None and len(parts) == 1:
                return f"{local_type}.{parts[0]}"
            base = self._resolve_name_str(head, scope)
            if base is not None:
                return ".".join([base, *parts])
            return None
        if (
            isinstance(cur, ast.Call)
            and isinstance(cur.func, ast.Name)
            and cur.func.id == "super"
            and parts
            and scope.class_qualname
        ):
            # super().m() -> symbolic "<super:Class>.m", canonicalized later
            return f"<super:{scope.class_qualname}>.{parts[0]}"
        return None

    def source_kind_of(self, resolved: Optional[str], call: ast.Call) -> Optional[str]:
        if resolved is None:
            return None
        if resolved in self._source_exact:
            return self._source_exact[resolved]
        for prefix, kind in self._source_prefix:
            if resolved.startswith(prefix):
                return kind
        if resolved.startswith("numpy.random."):
            tail = resolved[len("numpy.random.") :].split(".")[0]
            if tail == "default_rng":
                seeded = bool(call.args) and not (
                    isinstance(call.args[0], ast.Constant) and call.args[0].value is None
                )
                seeded = seeded or any(kw.arg == "seed" for kw in call.keywords)
                return None if seeded else "rng"
            if tail not in self.config.rng_constructors:
                return "rng"
        if resolved.startswith("random."):
            return "rng"
        return None


class _BodyWalker:
    """One fixpoint pass over a function body, updating scope.env."""

    def __init__(
        self,
        extractor: _Extractor,
        scope: _Scope,
        summary: FunctionSummary,
        mutated_params: Set[str],
        mutated_frees: Set[str],
        returns: Set[Atom],
        callsites: List[CallSite],
        lambda_names: Dict[int, str],
    ):
        self.ex = extractor
        self.scope = scope
        self.summary = summary
        self.mutated_params = mutated_params
        self.mutated_frees = mutated_frees
        self.returns = returns
        self.callsites = callsites
        self.changed = False
        #: (Lambda node, qualname) pairs discovered in this body
        self.lambdas: List[Tuple[ast.Lambda, str]] = []
        self._lambda_quals: Dict[int, str] = lambda_names
        self._call_ids: Dict[int, int] = {}

    def reset_pass(self) -> None:
        self.changed = False

    # -- environment --------------------------------------------------
    def _bind(self, name: str, atoms: FrozenSet[Atom]) -> None:
        old = self.scope.env.get(name, frozenset())
        new = cap_atoms(old | atoms)
        if new != old:
            self.scope.env[name] = new
            self.changed = True

    def _atoms_of_name(self, name: str) -> FrozenSet[Atom]:
        scope: Optional[_Scope] = self.scope
        if name in self.scope.locals or name in self.scope.global_decls:
            return self.scope.env.get(name, frozenset())
        scope = self.scope.parent
        while scope is not None:
            if name in scope.locals:
                return frozenset({("free", name)})
            scope = scope.parent
        if name in self.ex.module_defs or name in self.ex.imports.names:
            return frozenset() if name not in self.ex.mutable_globals else frozenset({("free", name)})
        if name in _BUILTIN_NAMES:
            return frozenset()
        return frozenset({("free", name)})

    def _is_param(self, name: str) -> bool:
        return name in self.summary.params or name in self.summary.kwonly

    def _is_local(self, name: str) -> bool:
        return name in self.scope.locals

    # -- set-origin detection -----------------------------------------
    def _is_set_origin(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return self.scope.lookup_set_typed(node.id)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_set_origin(node.left) or self._is_set_origin(node.right)
        if isinstance(node, ast.Call):
            resolved = self.ex._resolve_dotted(node.func, self.scope)
            if resolved in ("set", "frozenset"):
                # a set() of constants iterates arbitrarily but over known
                # elements; only non-literal contents are order-hazardous
                return bool(node.args) and not all(
                    isinstance(a, ast.Constant) for a in node.args
                )
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("keys", "values", "items")
                and isinstance(node.func.value, ast.Call)
            ):
                inner = self.ex._resolve_dotted(node.func.value.func, self.scope)
                return inner in ("vars", "globals", "locals")
            if resolved is not None and resolved.startswith("os.environ"):
                return True
        if isinstance(node, ast.Attribute):
            resolved = self.ex._resolve_dotted(node, self.scope)
            return resolved == "os.environ"
        return False

    # -- expressions ---------------------------------------------------
    def eval_expr(self, node: Optional[ast.expr]) -> FrozenSet[Atom]:
        if node is None:
            return frozenset()
        if isinstance(node, ast.Constant):
            return frozenset()
        if isinstance(node, ast.Name):
            return self._atoms_of_name(node.id)
        if isinstance(node, ast.Attribute):
            return self.eval_expr(node.value)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Lambda):
            return self._eval_lambda(node)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            return self._eval_comprehension(node)
        if isinstance(node, ast.IfExp):
            return self.eval_expr(node.test) | self.eval_expr(node.body) | self.eval_expr(
                node.orelse
            )
        if isinstance(node, ast.BoolOp):
            out: FrozenSet[Atom] = frozenset()
            for v in node.values:
                out |= self.eval_expr(v)
            return out
        if isinstance(node, ast.BinOp):
            return self.eval_expr(node.left) | self.eval_expr(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.eval_expr(node.operand)
        if isinstance(node, ast.Compare):
            out = self.eval_expr(node.left)
            for c in node.comparators:
                out |= self.eval_expr(c)
            return out
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = frozenset()
            for e in node.elts:
                out |= self.eval_expr(e)
            return out
        if isinstance(node, ast.Dict):
            out = frozenset()
            for k in node.keys:
                if k is not None:
                    out |= self.eval_expr(k)
            for v in node.values:
                out |= self.eval_expr(v)
            return out
        if isinstance(node, ast.Subscript):
            return self.eval_expr(node.value) | self.eval_expr(node.slice)
        if isinstance(node, ast.Slice):
            return (
                self.eval_expr(node.lower)
                | self.eval_expr(node.upper)
                | self.eval_expr(node.step)
            )
        if isinstance(node, ast.Starred):
            return self.eval_expr(node.value)
        if isinstance(node, ast.JoinedStr):
            out = frozenset()
            for v in node.values:
                out |= self.eval_expr(v)
            return out
        if isinstance(node, ast.FormattedValue):
            return self.eval_expr(node.value)
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self.eval_expr(node.value)
        if isinstance(node, ast.Yield):
            if node.value is not None:
                self.returns.update(self.eval_expr(node.value))
            return frozenset()
        if isinstance(node, ast.NamedExpr):
            atoms = self.eval_expr(node.value)
            if isinstance(node.target, ast.Name):
                self._bind(node.target.id, atoms)
            return atoms
        return frozenset()

    def _eval_lambda(self, node: ast.Lambda) -> FrozenSet[Atom]:
        key = id(node)
        if key not in self._lambda_quals:
            qual = f"{self.scope.qualname}.<lambda:{node.lineno}>"
            self._lambda_quals[key] = qual
            self.lambdas.append((node, qual))
        bound = {a.arg for a in [*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs]}
        out: Set[Atom] = set()
        for sub in ast.walk(node.body):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                if sub.id not in bound:
                    out.update(self._atoms_of_name(sub.id))
        return cap_atoms(frozenset(out))

    def _eval_comprehension(self, node: ast.expr) -> FrozenSet[Atom]:
        order: FrozenSet[Atom] = frozenset()
        for gen in node.generators:
            iter_atoms = self.eval_expr(gen.iter)
            if self._is_set_origin(gen.iter):
                iter_atoms |= frozenset({("source", "set-order", gen.iter.lineno)})
            for target in ast.walk(gen.target):
                if isinstance(target, ast.Name):
                    self._bind(target.id, iter_atoms)
                    self.scope.locals.add(target.id)
            order |= iter_atoms
            for cond in gen.ifs:
                self.eval_expr(cond)
        if isinstance(node, ast.DictComp):
            return order | self.eval_expr(node.key) | self.eval_expr(node.value)
        return order | self.eval_expr(node.elt)

    def _eval_call(self, node: ast.Call) -> FrozenSet[Atom]:
        resolved = self.ex._resolve_dotted(node.func, self.scope)
        recv: FrozenSet[Atom] = frozenset()
        if isinstance(node.func, ast.Attribute):
            recv = self.eval_expr(node.func.value)
        arg_atoms = [self.eval_expr(a.value if isinstance(a, ast.Starred) else a) for a in node.args]
        kw_atoms: Dict[str, FrozenSet[Atom]] = {}
        for kw in node.keywords:
            kw_atoms[kw.arg or "*"] = kw_atoms.get(kw.arg or "*", frozenset()) | self.eval_expr(
                kw.value
            )
        source_kind = self.ex.source_kind_of(resolved, node)
        if (
            source_kind is None
            and resolved is not None
            and resolved.split(".")[-1] in _ORDER_MATERIALIZERS
            and len(resolved.split(".")) == 1
            and any(self._is_set_origin(a) for a in node.args)
        ):
            source_kind = "set-order"
        sanitizer = resolved in self.ex.config.order_sanitizers
        # mutating container method on a bare shared name
        if (
            isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.attr in self.ex.config.mutating_methods
        ):
            root = node.func.value.id
            if self._is_param(root):
                self._record_param_mutation(root)
            elif not self._is_local(root):
                self._record_free_mutation(root)
        key = id(node)
        if key in self._call_ids:
            index = self._call_ids[key]
            site = self.callsites[index]
            site.recv = cap_atoms(site.recv | recv)
            site.args = [
                cap_atoms(old | new) for old, new in zip(site.args, arg_atoms)
            ] or arg_atoms
            for k, v in kw_atoms.items():
                site.kwargs[k] = cap_atoms(site.kwargs.get(k, frozenset()) | v)
        else:
            index = len(self.callsites)
            self._call_ids[key] = index
            payload = None
            if (
                isinstance(node.func, ast.Attribute)
                and resolved is None
                and isinstance(node.func.value, ast.Name)
            ):
                # unresolvable receiver: keep the bare method name so the
                # program index can try a unique-method fallback
                payload = f"?.{node.func.attr}"
            self.callsites.append(
                CallSite(
                    index=index,
                    line=node.lineno,
                    col=node.col_offset,
                    callee=resolved if resolved is not None else payload,
                    recv=cap_atoms(recv),
                    args=[cap_atoms(a) for a in arg_atoms],
                    kwargs={k: cap_atoms(v) for k, v in kw_atoms.items()},
                    source_kind=source_kind,
                    sanitizer=sanitizer,
                    constructs=(
                        resolved is not None
                        and resolved.split(".")[-1][:1].isupper()
                    ),
                )
            )
        if resolved is not None and resolved in self.ex.config.fork_map_names:
            self._record_forkmap(node)
        if source_kind is not None:
            return frozenset({("source", source_kind, node.lineno), ("call", index)})
        return frozenset({("call", index)})

    # -- mutation bookkeeping -----------------------------------------
    def _record_param_mutation(self, name: str) -> None:
        if name not in self.mutated_params:
            self.mutated_params.add(name)
            self.changed = True

    def _record_free_mutation(self, name: str) -> None:
        if name not in self.mutated_frees:
            self.mutated_frees.add(name)
            self.changed = True

    def _record_store_target(self, target: ast.expr) -> None:
        """Classify stores through attribute/subscript chains."""
        root = target
        depth = 0
        while isinstance(root, (ast.Attribute, ast.Subscript)):
            root = root.value
            depth += 1
        if depth == 0 or not isinstance(root, ast.Name):
            return
        name = root.id
        if self._is_param(name):
            self._record_param_mutation(name)
        elif name in self.scope.global_decls or not self._is_local(name):
            self._record_free_mutation(name)

    # -- fork_map sites ------------------------------------------------
    def _record_forkmap(self, node: ast.Call) -> None:
        for site in self.summary.forkmap_sites:
            if site.line == node.lineno and site.col == node.col_offset:
                return
        payload_qual: Optional[str] = None
        payload_kind = "opaque"
        captured: Set[str] = set()
        if node.args:
            payload = node.args[0]
            if isinstance(payload, ast.Lambda):
                payload_kind = "lambda"
                payload_qual = self._lambda_quals.get(id(payload))
                if payload_qual is None:
                    payload_qual = f"{self.scope.qualname}.<lambda:{payload.lineno}>"
                bound = {
                    a.arg
                    for a in [
                        *payload.args.posonlyargs,
                        *payload.args.args,
                        *payload.args.kwonlyargs,
                    ]
                }
                for sub in ast.walk(payload.body):
                    if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                        if sub.id not in bound and sub.id not in _BUILTIN_NAMES:
                            captured.add(sub.id)
            elif isinstance(payload, ast.Name):
                nested = self.scope.lookup_nested(payload.name if False else payload.id)
                if nested is not None:
                    payload_kind = "local"
                    payload_qual = nested
                    fn_node = self._find_nested_def(payload.id)
                    if fn_node is not None:
                        local = _collect_locals(fn_node) | {
                            a.arg
                            for a in [
                                *fn_node.args.posonlyargs,
                                *fn_node.args.args,
                                *fn_node.args.kwonlyargs,
                            ]
                        }
                        for sub in ast.walk(fn_node):
                            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                                if sub.id not in local and sub.id not in _BUILTIN_NAMES:
                                    captured.add(sub.id)
                else:
                    resolved = self.ex._resolve_name_str(payload.id, self.scope)
                    if resolved is not None:
                        payload_kind = "function"
                        payload_qual = resolved
        mutable_globals = sorted(
            name for name in captured if name in self.ex.mutable_globals
        )
        unpicklable: List[Tuple[str, str]] = []
        ctor_map = dict(self.ex.config.unpicklable_constructors)
        for name in sorted(captured):
            binding = self._find_binding_call(name)
            if binding is not None and binding in ctor_map:
                unpicklable.append((name, ctor_map[binding]))
        self.summary.forkmap_sites.append(
            ForkMapSite(
                line=node.lineno,
                col=node.col_offset,
                payload=payload_qual,
                payload_kind=payload_kind,
                captured_mutable_globals=mutable_globals,
                captured_unpicklable=unpicklable,
            )
        )

    def _find_nested_def(self, name: str) -> Optional[ast.FunctionDef]:
        scope: Optional[_Scope] = self.scope
        while scope is not None:
            node = scope.node
            body = getattr(node, "body", None)
            if isinstance(body, list):
                for stmt in body:
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        if stmt.name == name:
                            return stmt
            scope = scope.parent
        return None

    def _find_binding_call(self, name: str) -> Optional[str]:
        """Resolved constructor bound to ``name`` in an enclosing scope."""
        scope: Optional[_Scope] = self.scope.parent
        while scope is not None:
            node = scope.node
            body = getattr(node, "body", None)
            if isinstance(body, list):
                for stmt in ast.walk_stmts(body) if hasattr(ast, "walk_stmts") else _iter_stmts(body):
                    if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
                        for t in stmt.targets:
                            if isinstance(t, ast.Name) and t.id == name:
                                return self.ex._resolve_dotted(stmt.value.func, scope)
                    if isinstance(stmt, ast.With):
                        for item in stmt.items:
                            var = item.optional_vars
                            if (
                                isinstance(var, ast.Name)
                                and var.id == name
                                and isinstance(item.context_expr, ast.Call)
                            ):
                                return self.ex._resolve_dotted(item.context_expr.func, scope)
            scope = scope.parent
        return None

    # -- statements ----------------------------------------------------
    def visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # summarized separately
        if isinstance(stmt, ast.Global):
            self.scope.global_decls.update(stmt.names)
            return
        if isinstance(stmt, ast.Return):
            self.returns.update(self.eval_expr(stmt.value))
            return
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._visit_assign(stmt)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_atoms = self.eval_expr(stmt.iter)
            if self._is_set_origin(stmt.iter):
                iter_atoms |= frozenset({("source", "set-order", stmt.iter.lineno)})
            for target in ast.walk(stmt.target):
                if isinstance(target, ast.Name):
                    self._bind(target.id, iter_atoms)
            for s in [*stmt.body, *stmt.orelse]:
                self.visit_stmt(s)
            return
        if isinstance(stmt, (ast.While, ast.If)):
            self.eval_expr(stmt.test)
            for s in [*stmt.body, *stmt.orelse]:
                self.visit_stmt(s)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                atoms = self.eval_expr(item.context_expr)
                var = item.optional_vars
                if isinstance(var, ast.Name):
                    self._bind(var.id, atoms)
            for s in stmt.body:
                self.visit_stmt(s)
            return
        if isinstance(stmt, ast.Try):
            for s in [*stmt.body, *stmt.orelse, *stmt.finalbody]:
                self.visit_stmt(s)
            for handler in stmt.handlers:
                for s in handler.body:
                    self.visit_stmt(s)
            return
        if isinstance(stmt, ast.Expr):
            self.eval_expr(stmt.value)
            return
        if isinstance(stmt, (ast.Raise, ast.Assert)):
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Call):
                    pass
            if isinstance(stmt, ast.Raise):
                if stmt.exc is not None:
                    self.eval_expr(stmt.exc)
            else:
                self.eval_expr(stmt.test)
                if stmt.msg is not None:
                    self.eval_expr(stmt.msg)
            return
        if isinstance(stmt, ast.Delete):
            return
        if isinstance(stmt, (ast.Match,)) if hasattr(ast, "Match") else False:
            for case in stmt.cases:
                for s in case.body:
                    self.visit_stmt(s)
            return

    def _visit_assign(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.AugAssign):
            value_atoms = self.eval_expr(stmt.value)
            target = stmt.target
            if isinstance(target, ast.Name):
                self._bind(target.id, value_atoms)
                if target.id in self.scope.global_decls:
                    self._record_free_mutation(target.id)
            else:
                self._record_store_target(target)
                for sub in ast.walk(target):
                    if isinstance(sub, ast.expr) and not isinstance(sub, (ast.Name, ast.Attribute, ast.Subscript, ast.Slice)):
                        self.eval_expr(sub)
            return
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        value = stmt.value
        value_atoms = self.eval_expr(value) if value is not None else frozenset()
        set_origin = value is not None and self._is_set_origin(value)
        type_name: Optional[str] = None
        if isinstance(stmt, ast.AnnAssign):
            ann = _annotation_to_name(stmt.annotation)
            if ann:
                type_name = self.ex._resolve_name_str(ann, self.scope)
        elif value is not None and isinstance(value, ast.Call):
            resolved = self.ex._resolve_dotted(value.func, self.scope)
            if resolved is not None and resolved.split(".")[-1][:1].isupper():
                type_name = resolved
        for target in targets:
            if isinstance(target, ast.Name):
                self._bind(target.id, value_atoms)
                if set_origin:
                    if target.id not in self.scope.set_typed:
                        self.scope.set_typed.add(target.id)
                        self.changed = True
                if type_name is not None:
                    if self.scope.types.get(target.id) != type_name:
                        self.scope.types[target.id] = type_name
                        self.changed = True
                if target.id in self.scope.global_decls:
                    self._record_free_mutation(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        self._bind(sub.id, value_atoms)
            else:
                self._record_store_target(target)


def _iter_stmts(body: List[ast.stmt]):
    for stmt in body:
        yield stmt
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.stmt) and sub is not stmt:
                yield sub


def extract_file(
    rel_path: str,
    source: str,
    config: Optional[FlowConfig] = None,
    tree: Optional[ast.Module] = None,
    is_test: bool = False,
) -> FileSummary:
    """Summarize one module (parses ``source`` unless ``tree`` is given)."""
    cfg = config or FlowConfig()
    if tree is None:
        tree = ast.parse(source, filename=rel_path)
    return _Extractor(rel_path, tree, cfg, is_test=is_test).run()
