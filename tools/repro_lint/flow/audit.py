"""Contract/coverage audit: which public kernel entry points are guarded?

``repro._contracts`` centralizes the runtime invariants of the numerical
kernel, and the test-suite carries property tests (hypothesis) alongside
example-based ones.  This audit cross-references three facts for every
*public kernel entry point* — a name exported by ``__all__`` of a module
under the configured kernel zones:

* **guarded** — the entry point (for classes: any of their methods) can
  reach a ``repro._contracts.check_*`` call through the call graph, so the
  invariants actually fire on that code path when contracts are enabled;
* **tested** — some test file references the name at all;
* **property-tested** — a test file that imports ``hypothesis`` references
  the name.

The audit is advisory (it does not produce findings and cannot fail the
lint); ``repro-lint audit-contracts`` renders it as a table so gaps are
visible in review instead of latent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set

from .config import FlowConfig
from .program import ProgramIndex

__all__ = ["AuditEntry", "ContractAudit", "audit_contracts"]


@dataclass
class AuditEntry:
    """Audit verdict for one public kernel entry point."""

    qualname: str
    rel_path: str
    line: int
    kind: str  # "function" | "class"
    guarded: bool
    tested: bool
    property_tested: bool

    def to_json(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname,
            "rel_path": self.rel_path,
            "line": self.line,
            "kind": self.kind,
            "guarded": self.guarded,
            "tested": self.tested,
            "property_tested": self.property_tested,
        }


@dataclass
class ContractAudit:
    """The full audit result with render/serialize helpers."""

    entries: List[AuditEntry] = field(default_factory=list)

    @property
    def unguarded(self) -> List[AuditEntry]:
        return [e for e in self.entries if not e.guarded]

    @property
    def untested(self) -> List[AuditEntry]:
        return [e for e in self.entries if not e.tested]

    def to_json(self) -> Dict[str, Any]:
        return {
            "entries": [e.to_json() for e in self.entries],
            "summary": {
                "total": len(self.entries),
                "guarded": sum(e.guarded for e in self.entries),
                "tested": sum(e.tested for e in self.entries),
                "property_tested": sum(e.property_tested for e in self.entries),
            },
        }

    def render(self) -> str:
        if not self.entries:
            return "no public kernel entry points found"
        name_w = max(len(e.qualname) for e in self.entries)
        lines = [
            f"{'entry point':<{name_w}}  kind      contracts  tested  property",
            "-" * (name_w + 42),
        ]
        mark = lambda b: "yes" if b else " - "  # noqa: E731
        for e in sorted(self.entries, key=lambda e: (e.guarded, e.qualname)):
            lines.append(
                f"{e.qualname:<{name_w}}  {e.kind:<8}  "
                f"{mark(e.guarded):^9}  {mark(e.tested):^6}  "
                f"{mark(e.property_tested):^8}"
            )
        s = self.to_json()["summary"]
        lines.append("")
        lines.append(
            f"{s['total']} entry points: {s['guarded']} contract-guarded, "
            f"{s['tested']} tested, {s['property_tested']} property-tested"
        )
        return "\n".join(lines)


def _reaches_contracts(
    index: ProgramIndex, start: str, namespace: str, memo: Dict[str, bool]
) -> bool:
    if start in memo:
        return memo[start]
    memo[start] = False  # cycle guard
    fn = index.functions.get(start)
    if fn is None:
        return False
    for site in fn.callsites:
        canon = index.canonical(site.callee)
        target = canon or site.callee
        if target is not None and target.startswith(namespace):
            memo[start] = True
            return True
    for succ in index.edges.get(start, ()):  # resolved project calls
        if _reaches_contracts(index, succ, namespace, memo):
            memo[start] = True
            return True
    return memo[start]


def audit_contracts(index: ProgramIndex, config: FlowConfig) -> ContractAudit:
    audit = ContractAudit()
    memo: Dict[str, bool] = {}

    tested_names: Set[str] = set()
    property_names: Set[str] = set()
    for f in index.files.values():
        if not any(f.rel_path.startswith(d) for d in config.test_dirs):
            continue
        tested_names.update(f.referenced_idents)
        if f.imports_hypothesis:
            property_names.update(f.referenced_idents)

    seen: Set[str] = set()
    for f in index.files.values():
        if not any(f.rel_path.startswith(z) for z in config.kernel_zones):
            continue
        if not f.exports:
            continue
        for name in f.exports:
            qual = index.canonical(f"{f.module}.{name}")
            if qual is None or qual in seen:
                continue
            seen.add(qual)
            short = qual.rsplit(".", 1)[-1]
            if qual in index.classes:
                cls = index.classes[qual]
                guarded = any(
                    _reaches_contracts(
                        index, m, config.contracts_namespace, memo
                    )
                    for method in cls.methods
                    if (m := f"{qual}.{method}") in index.functions
                )
                audit.entries.append(
                    AuditEntry(
                        qualname=qual,
                        rel_path=index.file_of.get(
                            f"{qual}.__init__", f.rel_path
                        ),
                        line=cls.line,
                        kind="class",
                        guarded=guarded,
                        tested=short in tested_names,
                        property_tested=short in property_names,
                    )
                )
            elif qual in index.functions:
                fn = index.functions[qual]
                audit.entries.append(
                    AuditEntry(
                        qualname=qual,
                        rel_path=index.file_of.get(qual, f.rel_path),
                        line=fn.line,
                        kind="function",
                        guarded=_reaches_contracts(
                            index, qual, config.contracts_namespace, memo
                        ),
                        tested=short in tested_names,
                        property_tested=short in property_names,
                    )
                )
    audit.entries.sort(key=lambda e: e.qualname)
    return audit
