"""SARIF 2.1.0 rendering of findings.

SARIF is the interchange format GitHub code scanning (and most editors'
problem panes) ingest, which is what lets the CI job upload ``--flow``
results as an artifact that renders as annotations instead of a log dump.
Only the small, stable core of the spec is emitted: one run, one tool
driver with the rule catalogue, one result per finding with a physical
location.  Columns are converted from the engine's 0-based offsets to
SARIF's 1-based ones.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from .engine import Finding
from .registry import rule_catalogue

__all__ = ["to_sarif", "render_sarif"]

_SARIF_VERSION = "2.1.0"
_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def to_sarif(findings: Sequence[Finding]) -> Dict[str, Any]:
    catalogue = rule_catalogue()
    used = sorted({f.rule for f in findings} | set(catalogue))
    rules: List[Dict[str, Any]] = [
        {
            "id": rule_id,
            "shortDescription": {"text": catalogue.get(rule_id, rule_id)},
        }
        for rule_id in used
    ]
    rule_index = {rule_id: i for i, rule_id in enumerate(used)}
    results: List[Dict[str, Any]] = [
        {
            "ruleId": f.rule,
            "ruleIndex": rule_index[f.rule],
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": f.line,
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
        }
        for f in findings
    ]
    return {
        "$schema": _SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro-lint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(findings: Sequence[Finding]) -> str:
    return json.dumps(to_sarif(findings), indent=2, sort_keys=True) + "\n"
