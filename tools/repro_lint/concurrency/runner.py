"""Entry points of the concurrency-safety pass (RL020–RL025).

Mirrors :mod:`repro_lint.resources.runner`: the engine hands over the
parsed file contexts, concurrency facts are collected in one AST pass
over the non-test files, and the interprocedural rules (races, lock
order, blocking-under-lock, fork safety) share a single flow program
index — extracted through the same content-addressed summary cache
``--flow`` and ``--resources`` use, when configured.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..engine import FileContext, Finding, LintConfig
from ..flow.cache import SummaryCache, extract_summaries
from ..flow.program import ProgramIndex
from .blocking import run_blocking_rule
from .config import ConcurrencyOptions
from .events import run_events_rule
from .forksafety import run_fork_safety_rule
from .lifecycle import run_lifecycle_rule
from .locks import run_lock_order_rule
from .model import collect_facts
from .shared_state import run_shared_state_rule

__all__ = ["CONCURRENCY_RULE_IDS", "run_concurrency_rules"]

CONCURRENCY_RULE_IDS = ("RL020", "RL021", "RL022", "RL023", "RL024", "RL025")

# rules that need the flow call graph, not just per-file facts
_INDEXED_RULES = ("RL020", "RL021", "RL022", "RL023")


def run_concurrency_rules(
    contexts: Sequence[FileContext],
    config: Optional[LintConfig] = None,
    options: Optional[ConcurrencyOptions] = None,
) -> List[Finding]:
    """Run RL020–RL025 over the given files.

    Returns *raw* findings — the engine applies suppression comments
    centrally, exactly as for the per-file, flow and resource rules.
    """
    cfg = config or LintConfig()
    opts = options or ConcurrencyOptions()
    wanted = [r for r in CONCURRENCY_RULE_IDS if cfg.enabled(r)]
    if not wanted:
        return []

    non_test = [ctx for ctx in contexts if not ctx.is_test_file]
    facts = collect_facts(non_test, opts.config)

    index: Optional[ProgramIndex] = None
    if any(r in wanted for r in _INDEXED_RULES):
        cache = SummaryCache(opts.cache_dir) if opts.cache_dir else None
        items = [
            (ctx.rel_path, ctx.source, ctx.is_test_file) for ctx in contexts
        ]
        summaries = extract_summaries(
            items, opts.flow_config, jobs=opts.jobs, cache=cache
        )
        index = ProgramIndex(summaries)

    findings: List[Finding] = []
    if "RL020" in wanted:
        findings.extend(run_shared_state_rule(facts, index, opts.config))
    if "RL021" in wanted:
        findings.extend(run_lock_order_rule(facts, index, opts.config))
    if "RL022" in wanted:
        findings.extend(run_blocking_rule(facts, index, opts.config))
    if "RL023" in wanted:
        findings.extend(run_fork_safety_rule(facts, index, opts.config))
    if "RL024" in wanted:
        findings.extend(run_lifecycle_rule(facts, opts.config))
    if "RL025" in wanted:
        findings.extend(run_events_rule(facts, opts.config))
    return findings
