"""RL020 — shared-state write without a lock (interprocedural races).

The detector partitions every function into *thread context* (reachable
on the flow call graph from a thread entry: a ``threading.Thread``
``target=``, or a configured entry name like ``worker_loop`` /
``_heartbeat_loop`` / a transport ``pump``) and *main path* (everything
else — the scheduler loop, drivers, tests' entry points).  An instance
attribute (or module global) mutated on **both** sides must either hold
one common lock at every mutation site or be mediated by an internally
synchronized object (``queue.Queue``, ``threading.Event``, ...).

Deliberately *not* flagged:

* write-main / read-thread attributes (the frozen-before-share pattern —
  ``TaskGraph`` is built by the driver, then only read by workers);
* writes inside ``__init__``/``__new__`` (construction precedes sharing);
* attributes bound to synchronized constructors in any method.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..engine import Finding
from ..flow.program import ProgramIndex
from .config import ConcurrencyConfig
from .model import ConcurrencyFacts

__all__ = ["thread_entries", "thread_reachable", "run_shared_state_rule"]

_CTOR_NAMES = ("__init__", "__new__")


def thread_entries(
    facts: ConcurrencyFacts, index: ProgramIndex, cfg: ConcurrencyConfig
) -> Dict[str, str]:
    """``{function qualname: why it is a thread entry}``."""
    entries: Dict[str, str] = {}
    non_test_files = set(facts.contexts)
    for f in facts.funcs.values():
        for tc in f.thread_creates:
            if tc.target is None:
                continue
            canon = index.canonical(tc.target)
            qual: Optional[str] = None
            if canon is not None and canon in index.functions:
                qual = canon
            else:
                final = tc.target.rsplit(".", 1)[-1]
                candidates = [
                    name
                    for name in index.functions
                    if name.rsplit(".", 1)[-1] == final
                    and index.file_of.get(name) in non_test_files
                ]
                if len(candidates) == 1:
                    qual = candidates[0]
            if qual is not None:
                entries.setdefault(
                    qual, f"threading.Thread target at {f.rel_path}:{tc.line}"
                )
    wanted = set(cfg.thread_entry_names)
    for name in index.functions:
        if (
            name.rsplit(".", 1)[-1] in wanted
            and index.file_of.get(name) in non_test_files
        ):
            entries.setdefault(name, "configured thread entry")
    return entries


def thread_reachable(
    facts: ConcurrencyFacts, index: ProgramIndex, cfg: ConcurrencyConfig
) -> Dict[str, str]:
    """``{function qualname: entry qualname}`` for every function that can
    run on a worker/heartbeat thread."""
    out: Dict[str, str] = {}
    for entry in sorted(thread_entries(facts, index, cfg)):
        for qual in index.reachable_from(entry):
            out.setdefault(qual, entry)
    return out


_Site = Tuple[str, str, int, int, Tuple[str, ...], str]
# (func qualname, func name, line, col, held, rel_path)


def _partition(
    sites: List[_Site], reach: Dict[str, str]
) -> Tuple[List[_Site], List[_Site]]:
    thread_side = [s for s in sites if s[0] in reach]
    main_side = [s for s in sites if s[0] not in reach]
    return thread_side, main_side


def _race_findings(
    what: str,
    sites: List[_Site],
    thread_side: List[_Site],
    main_side: List[_Site],
    reach: Dict[str, str],
) -> List[Finding]:
    common = set(sites[0][4])
    for s in sites[1:]:
        common &= set(s[4])
    if common:
        return []
    unlocked = [s for s in sites if not s[4]]
    flagged = unlocked if unlocked else sites
    entry = reach[thread_side[0][0]]
    detail = (
        f"{what} is written from thread context ({thread_side[0][0]}, "
        f"reachable from {entry}) and from the main path "
        f"({main_side[0][0]}) without a common lock"
    )
    out = []
    for s in flagged:
        held = f" (holds {', '.join(s[4])})" if s[4] else ""
        out.append(
            Finding(
                rule="RL020",
                path=s[5],
                line=s[2],
                col=s[3],
                message=(
                    f"{detail}; this mutation site{held} races — guard "
                    f"every mutation with one shared lock or mediate the "
                    f"state through a queue"
                ),
            )
        )
    return out


def run_shared_state_rule(
    facts: ConcurrencyFacts,
    index: Optional[ProgramIndex],
    cfg: ConcurrencyConfig,
) -> List[Finding]:
    if index is None:
        return []
    reach = thread_reachable(facts, index, cfg)
    findings: List[Finding] = []

    # -- instance attributes -------------------------------------------
    attr_sites: Dict[Tuple[str, str], List[_Site]] = {}
    for qual, f in facts.funcs.items():
        if f.class_qualname is None or f.name in _CTOR_NAMES:
            continue
        for attr, line, col, held in f.self_writes:
            attr_sites.setdefault((f.class_qualname, attr), []).append(
                (qual, f.name, line, col, held, f.rel_path)
            )
    for (cls, attr), sites in sorted(attr_sites.items()):
        if attr in facts.sync_attrs.get(cls, set()):
            continue
        thread_side, main_side = _partition(sites, reach)
        if not thread_side or not main_side:
            continue
        findings.extend(
            _race_findings(
                f"attribute {cls}.{attr}", sites, thread_side, main_side, reach
            )
        )

    # -- module globals -------------------------------------------------
    global_sites: Dict[Tuple[str, str], List[_Site]] = {}
    for qual, f in facts.funcs.items():
        module = facts.module_of.get(f.rel_path, "")
        for name, line, col, held in f.global_writes:
            if name in facts.module_locks.get(module, {}):
                continue
            global_sites.setdefault((module, name), []).append(
                (qual, f.name, line, col, held, f.rel_path)
            )
    for (module, name), sites in sorted(global_sites.items()):
        thread_side, main_side = _partition(sites, reach)
        if not thread_side or not main_side:
            continue
        findings.extend(
            _race_findings(
                f"module global {module}.{name}",
                sites,
                thread_side,
                main_side,
                reach,
            )
        )
    return findings
