"""RL024 — thread lifecycle hygiene.

Four shapes, all per-file:

* **unnamed/undaemonized threads in the distributed engine** — every
  thread under :attr:`~.config.ConcurrencyConfig.thread_name_zones` must
  carry ``name=`` (tracebacks, the lock tracer and the dashboard
  attribute activity by thread name) and ``daemon=True`` (a forgotten
  worker must never block interpreter exit);
* **non-daemon thread never joined** (outside the zones) — it outlives
  the spawner and blocks interpreter shutdown;
* **untimed ``join()`` in a shutdown path** — a hung worker then hangs
  teardown forever;
* **timed ``join()`` whose outcome is ignored** — ``join(timeout=...)``
  returns silently with the thread still alive; without an
  ``is_alive()`` probe after it, the leak is invisible (the exact bug
  the worker heartbeat shutdown had).
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..engine import Finding
from .config import ConcurrencyConfig
from .model import ConcurrencyFacts, FuncFacts

__all__ = ["run_lifecycle_rule"]


def _in_zone(rel_path: str, cfg: ConcurrencyConfig) -> bool:
    return any(rel_path.startswith(z) for z in cfg.thread_name_zones)


def run_lifecycle_rule(
    facts: ConcurrencyFacts, cfg: ConcurrencyConfig
) -> List[Finding]:
    findings: List[Finding] = []

    # group functions by file for cross-function join matching
    by_file: Dict[str, List[FuncFacts]] = {}
    for f in facts.funcs.values():
        by_file.setdefault(f.rel_path, []).append(f)

    for rel_path, funcs in sorted(by_file.items()):
        zone = _in_zone(rel_path, cfg)
        joined_names: Set[str] = {
            j.chain[-1] for f in funcs for j in f.joins if j.chain
        }
        thread_names: Set[str] = {
            chain[-1]
            for f in funcs
            for tc in f.thread_creates
            for chain in tc.assigned
        }
        for f in funcs:
            for tc in f.thread_creates:
                if zone and not tc.has_name:
                    findings.append(
                        Finding(
                            rule="RL024",
                            path=rel_path,
                            line=tc.line,
                            col=tc.col,
                            message=(
                                "thread created without name= in the "
                                "distributed engine: tracebacks, the lock "
                                "tracer and the dashboard attribute "
                                "activity by thread name — use a "
                                "'repro-<role>-<id>' name"
                            ),
                        )
                    )
                if zone and tc.daemon is not True:
                    findings.append(
                        Finding(
                            rule="RL024",
                            path=rel_path,
                            line=tc.line,
                            col=tc.col,
                            message=(
                                "thread created without daemon=True in the "
                                "distributed engine: a hung or leaked "
                                "worker must never block interpreter exit"
                            ),
                        )
                    )
                if not zone and tc.daemon is not True:
                    names = {chain[-1] for chain in tc.assigned}
                    if not names or not (names & joined_names):
                        findings.append(
                            Finding(
                                rule="RL024",
                                path=rel_path,
                                line=tc.line,
                                col=tc.col,
                                message=(
                                    "non-daemon thread is never joined in "
                                    "this module: it outlives its spawner "
                                    "and blocks interpreter shutdown — "
                                    "join it (with a timeout) or make it "
                                    "daemon"
                                ),
                            )
                        )

            is_shutdown = f.name in cfg.shutdown_names
            for j in f.joins:
                if is_shutdown and not j.has_timeout:
                    findings.append(
                        Finding(
                            rule="RL024",
                            path=rel_path,
                            line=j.line,
                            col=j.col,
                            message=(
                                f"join() without a timeout in shutdown "
                                f"path {f.name}(): a hung worker hangs "
                                f"teardown forever — join(timeout=...) "
                                f"and handle the still-alive case"
                            ),
                        )
                    )
                if (
                    zone
                    and j.has_timeout
                    and j.chain
                    and j.chain[-1] in thread_names
                ):
                    probed_after = any(
                        chain and chain[-1] == j.chain[-1] and line >= j.line
                        for chain, line in f.alive_checks
                    )
                    if not probed_after:
                        findings.append(
                            Finding(
                                rule="RL024",
                                path=rel_path,
                                line=j.line,
                                col=j.col,
                                message=(
                                    "timed join ignores its outcome: "
                                    "join(timeout=...) returns silently "
                                    "with the thread still alive — probe "
                                    "is_alive() afterwards and surface "
                                    "the leak"
                                ),
                            )
                        )
    return findings
