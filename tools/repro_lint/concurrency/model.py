"""Fact extraction for the concurrency rules.

One AST pass per (non-test) file collects everything RL020–RL025 need:

* the **lock table** — every ``threading.Lock``/``RLock`` the project
  creates, identified by a stable qualname (``repro.core.cache.
  SolverCache._lock``, ``repro.distributions.workspace._REGISTRY_LOCK``)
  with its creation site, so the runtime tracer can map instrumented
  locks back to static identities;
* per-function **lock regions** — which locks are held at every
  statement, derived from lexical ``with <lock>:`` nesting;
* per-function events: call sites (joined against the flow summaries'
  resolved callees by ``(line, col)``), blocking/fork primitives, thread
  construction/start/join/``is_alive``, ``Event``/``Condition`` waits,
  and ``self.attr`` mutations — each tagged with the held-lock set.

The walker reproduces the flow extractor's qualname conventions
(``{module}.{Class}.{method}``, ``.<locals>.`` for nested definitions)
so its facts join cleanly with the :class:`~repro_lint.flow.program.
ProgramIndex` call graph.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..engine import FileContext
from ..flow.extract import module_name_of
from ..imports import ImportTracker
from ..resources._common import receiver_chain
from .config import ConcurrencyConfig

__all__ = [
    "LockInfo",
    "ThreadCreate",
    "JoinCall",
    "WaitCall",
    "BlockingCall",
    "ForkCall",
    "FuncFacts",
    "ConcurrencyFacts",
    "collect_facts",
]


@dataclass(frozen=True)
class LockInfo:
    """One project lock with a stable identity and its creation site."""

    lock_id: str
    #: resolved constructor qualname (``threading.RLock``) or ``"unknown"``
    kind: str
    rel_path: str
    line: int
    reentrant: bool


@dataclass
class ThreadCreate:
    """One ``threading.Thread(...)`` construction site."""

    line: int
    col: int
    #: tentative resolved name of the ``target=`` callable (``None`` =
    #: absent or dynamic)
    target: Optional[str]
    has_name: bool
    #: literal ``daemon=`` value; ``None`` when absent or non-literal
    daemon: Optional[bool]
    #: name chains the thread object is bound to (``("w", "thread")``);
    #: aliasing assignments append
    assigned: List[Tuple[str, ...]] = field(default_factory=list)
    started: bool = False


@dataclass
class JoinCall:
    chain: Tuple[str, ...]
    line: int
    col: int
    has_timeout: bool


@dataclass
class WaitCall:
    line: int
    col: int
    has_timeout: bool
    #: "event" | "condition" | "unknown"
    recv_kind: str
    #: the wait sits inside a ``while True`` (or constant-true) loop
    in_unbounded_loop: bool
    #: the wait sits inside any ``while`` loop (predicate re-check)
    in_while_loop: bool
    held: Tuple[str, ...]


@dataclass
class BlockingCall:
    #: resolved primitive name (``time.sleep``, ``queue.get``, ``join``)
    name: str
    line: int
    col: int
    held: Tuple[str, ...]


@dataclass
class ForkCall:
    name: str
    line: int
    col: int
    held: Tuple[str, ...]


@dataclass
class FuncFacts:
    """Everything the rules need about one function."""

    qualname: str
    name: str
    rel_path: str
    line: int
    class_qualname: Optional[str] = None
    #: (lock_id, line) for each ``with <lock>:`` acquisition
    acquisitions: List[Tuple[str, int]] = field(default_factory=list)
    #: (lock_id, line) where a lock is re-entered while already held
    reacquisitions: List[Tuple[str, int]] = field(default_factory=list)
    #: (held_id, acquired_id, line) for each lexically nested acquisition
    direct_edges: List[Tuple[str, str, int]] = field(default_factory=list)
    #: (line, col, held) for every call expression — joined with the flow
    #: summaries to learn the resolved callee
    callsites: List[Tuple[int, int, Tuple[str, ...]]] = field(default_factory=list)
    blocking: List[BlockingCall] = field(default_factory=list)
    forks: List[ForkCall] = field(default_factory=list)
    thread_creates: List[ThreadCreate] = field(default_factory=list)
    joins: List[JoinCall] = field(default_factory=list)
    waits: List[WaitCall] = field(default_factory=list)
    #: receiver chains probed with ``.is_alive()`` and the probe line
    alive_checks: List[Tuple[Tuple[str, ...], int]] = field(default_factory=list)
    #: (attr, line, col, held) for each ``self.attr`` store / in-place
    #: mutation inside a method
    self_writes: List[Tuple[str, int, int, Tuple[str, ...]]] = field(
        default_factory=list
    )
    #: (name, line, col, held) for module-global container mutations and
    #: ``global``-declared rebinding
    global_writes: List[Tuple[str, int, int, Tuple[str, ...]]] = field(
        default_factory=list
    )


@dataclass
class ConcurrencyFacts:
    """Project-wide concurrency facts, joined across files."""

    funcs: Dict[str, FuncFacts] = field(default_factory=dict)
    locks: Dict[str, LockInfo] = field(default_factory=dict)
    #: class qualname -> attrs bound to internally-synchronized objects
    sync_attrs: Dict[str, Set[str]] = field(default_factory=dict)
    #: (class qualname, attr) -> constructor qualname (Event/Queue typing)
    class_attr_types: Dict[Tuple[str, str], str] = field(default_factory=dict)
    #: module -> {name: LockInfo} for module-level locks
    module_locks: Dict[str, Dict[str, LockInfo]] = field(default_factory=dict)
    #: rel_path -> FileContext for finding construction
    contexts: Dict[str, FileContext] = field(default_factory=dict)
    #: rel_path -> module name
    module_of: Dict[str, str] = field(default_factory=dict)

    def locks_by_attr(self, attr: str) -> List[LockInfo]:
        suffix = f".{attr}"
        return [li for li in self.locks.values() if li.lock_id.endswith(suffix)]


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _qualify_call(tracker: ImportTracker, call: ast.Call) -> Optional[str]:
    return tracker.qualify(call.func)


def _literal_bool(node: Optional[ast.expr]) -> Optional[bool]:
    if isinstance(node, ast.Constant) and isinstance(node.value, bool):
        return node.value
    return None


def _kwarg(call: ast.Call, name: str) -> Optional[ast.expr]:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _join_has_timeout(call: ast.Call) -> Optional[bool]:
    """Timeout classification for a ``.join(...)`` call.

    Returns ``None`` when the call does not look like a thread/process
    join at all (``", ".join(parts)`` takes one non-numeric argument).
    """
    if _kwarg(call, "timeout") is not None:
        return True
    if not call.args:
        return False
    if len(call.args) == 1:
        arg = call.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, (int, float)):
            return True
        # e.g. str.join(iterable) — not a concurrency join
        return None
    return None


# ---------------------------------------------------------------------------
# pass 1: lock table + synchronized-attribute typing
# ---------------------------------------------------------------------------


def _collect_definitions(
    facts: ConcurrencyFacts, ctx: FileContext, cfg: ConcurrencyConfig
) -> None:
    module, _ = module_name_of(ctx.rel_path)
    facts.module_of[ctx.rel_path] = module
    tracker = ImportTracker(ctx.tree)
    lock_ctors = set(cfg.lock_constructors)
    sync_ctors = set(cfg.sync_constructors)
    reentrant = set(cfg.reentrant_constructors)

    def register(lock_id: str, kind: str, line: int) -> None:
        facts.locks[lock_id] = LockInfo(
            lock_id=lock_id,
            kind=kind,
            rel_path=ctx.rel_path,
            line=line,
            reentrant=kind in reentrant or kind == "unknown",
        )

    # module-level locks
    for stmt in ctx.tree.body:
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            continue
        value = stmt.value
        if not isinstance(value, ast.Call):
            continue
        ctor = _qualify_call(tracker, value)
        if ctor not in lock_ctors:
            continue
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name):
                lock_id = f"{module}.{target.id}"
                register(lock_id, ctor or "unknown", stmt.lineno)
                facts.module_locks.setdefault(module, {})[target.id] = facts.locks[
                    lock_id
                ]

    # class-attribute locks and synchronized attributes (any method may
    # create them, __init__ in practice)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        cls_qual = f"{module}.{node.name}"
        for fn in ast.walk(node):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for stmt in ast.walk(fn):
                if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    continue
                value = stmt.value
                if not isinstance(value, ast.Call):
                    continue
                ctor = _qualify_call(tracker, value)
                if ctor is None:
                    continue
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                for target in targets:
                    chain = receiver_chain(target)
                    if chain is None or len(chain) != 2 or chain[0] != "self":
                        continue
                    attr = chain[1]
                    if ctor in lock_ctors:
                        lock_id = f"{cls_qual}.{attr}"
                        register(lock_id, ctor, stmt.lineno)
                    if ctor in sync_ctors:
                        facts.sync_attrs.setdefault(cls_qual, set()).add(attr)
                        facts.class_attr_types[(cls_qual, attr)] = ctor


# ---------------------------------------------------------------------------
# pass 2: per-function facts
# ---------------------------------------------------------------------------


class _FunctionWalker:
    """Walks one function body tracking the lexically held lock set."""

    def __init__(
        self,
        facts: ConcurrencyFacts,
        fn_facts: FuncFacts,
        ctx: FileContext,
        cfg: ConcurrencyConfig,
        tracker: ImportTracker,
        module: str,
        module_defs: Set[str],
        module_globals: Set[str],
    ) -> None:
        self.facts = facts
        self.f = fn_facts
        self.ctx = ctx
        self.cfg = cfg
        self.tracker = tracker
        self.module = module
        self.module_defs = module_defs
        self.module_globals = module_globals
        #: local name -> lock id (``x = threading.Lock()``)
        self.local_locks: Dict[str, str] = {}
        #: local name -> constructor qualname (Event/Queue/... typing)
        self.local_types: Dict[str, str] = {}
        #: plain names the function itself binds (shadowing globals)
        self.local_names: Set[str] = set()
        #: names declared ``global`` in this function
        self.global_decls: Set[str] = set()
        #: name chains currently known to hold thread objects
        self.thread_chains: Set[Tuple[str, ...]] = set()
        self.loop_stack: List[str] = []

    # -- lock identity resolution --------------------------------------
    def resolve_lock(self, expr: ast.expr) -> Optional[str]:
        chain = receiver_chain(expr)
        if chain is None:
            return None
        if len(chain) == 1:
            name = chain[0]
            if name in self.local_locks:
                return self.local_locks[name]
            module_table = self.facts.module_locks.get(self.module, {})
            if name in module_table:
                return module_table[name].lock_id
            qualified = self.tracker.qualify(expr)
            if qualified in self.facts.locks:
                return qualified
            candidates = [
                li
                for li in self.facts.locks.values()
                if li.lock_id.rsplit(".", 1)[-1] == name
            ]
            if len(candidates) == 1:
                return candidates[0].lock_id
            return None
        if len(chain) == 2:
            root, attr = chain
            if root == "self" and self.f.class_qualname:
                lock_id = f"{self.f.class_qualname}.{attr}"
                if lock_id in self.facts.locks:
                    return lock_id
            candidates = self.facts.locks_by_attr(attr)
            if len(candidates) == 1:
                return candidates[0].lock_id
            if (
                root == "self"
                and self.f.class_qualname
                and attr in self.cfg.lock_attr_fallbacks
                and not candidates
            ):
                # construction out of view (inherited attribute): assume a
                # reentrant lock under the receiver class's identity
                lock_id = f"{self.f.class_qualname}.{attr}"
                self.facts.locks[lock_id] = LockInfo(
                    lock_id=lock_id,
                    kind="unknown",
                    rel_path=self.ctx.rel_path,
                    line=getattr(expr, "lineno", self.f.line),
                    reentrant=True,
                )
                return lock_id
        return None

    # -- receiver typing ------------------------------------------------
    def type_of(self, chain: Tuple[str, ...]) -> Optional[str]:
        if len(chain) == 1:
            return self.local_types.get(chain[0])
        if len(chain) == 2 and chain[0] == "self" and self.f.class_qualname:
            return self.facts.class_attr_types.get(
                (self.f.class_qualname, chain[1])
            )
        return None

    # -- statement walk -------------------------------------------------
    def walk(self, body: Sequence[ast.stmt], held: Tuple[str, ...]) -> None:
        for stmt in body:
            self.statement(stmt, held)

    def statement(self, stmt: ast.stmt, held: Tuple[str, ...]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested definitions run later, with their own held set
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            new_held = held
            for item in stmt.items:
                lock_id = self.resolve_lock(item.context_expr)
                if lock_id is not None:
                    self.f.acquisitions.append((lock_id, stmt.lineno))
                    for h in new_held:
                        if h != lock_id:
                            self.f.direct_edges.append((h, lock_id, stmt.lineno))
                    if lock_id in new_held:
                        self.f.reacquisitions.append((lock_id, stmt.lineno))
                    else:
                        new_held = new_held + (lock_id,)
                else:
                    self.expression(item.context_expr, held)
            self.walk(stmt.body, new_held)
            return
        if isinstance(stmt, ast.While):
            self.expression(stmt.test, held)
            unbounded = isinstance(stmt.test, ast.Constant) and bool(stmt.test.value)
            self.loop_stack.append("while_true" if unbounded else "while")
            self.walk(stmt.body, held)
            self.loop_stack.pop()
            self.walk(stmt.orelse, held)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.expression(stmt.iter, held)
            self.loop_stack.append("for")
            self.walk(stmt.body, held)
            self.loop_stack.pop()
            self.walk(stmt.orelse, held)
            return
        if isinstance(stmt, ast.If):
            self.expression(stmt.test, held)
            self.walk(stmt.body, held)
            self.walk(stmt.orelse, held)
            return
        if isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            self.walk(stmt.body, held)
            for handler in stmt.handlers:
                self.walk(handler.body, held)
            self.walk(stmt.orelse, held)
            self.walk(stmt.finalbody, held)
            return
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self.assignment(stmt, held)
            return
        if isinstance(stmt, (ast.Delete,)):
            for target in stmt.targets:
                self.store_target(target, stmt, held)
            return
        if isinstance(stmt, ast.Global):
            self.global_decls.update(stmt.names)
            return
        # Expr / Return / Raise / Assert / simple statements: scan calls
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self.expression(child, held)

    # -- assignments ----------------------------------------------------
    def assignment(self, stmt: ast.stmt, held: Tuple[str, ...]) -> None:
        value = getattr(stmt, "value", None)
        if value is not None:
            self.expression(value, held)
        targets: List[ast.expr]
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        else:
            targets = [stmt.target]  # type: ignore[list-item]
        if not (isinstance(stmt, ast.AnnAssign) and value is None):
            for target in targets:
                self.store_target(target, stmt, held)

        # track lock/type bindings and thread-object aliasing
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)) and isinstance(
            value, ast.Call
        ):
            ctor = _qualify_call(self.tracker, value)
            for target in targets:
                if isinstance(target, ast.Name):
                    if ctor in self.cfg.lock_constructors:
                        lock_id = f"{self.f.qualname}.{target.id}"
                        self.facts.locks[lock_id] = LockInfo(
                            lock_id=lock_id,
                            kind=ctor or "unknown",
                            rel_path=self.ctx.rel_path,
                            line=stmt.lineno,
                            reentrant=ctor in self.cfg.reentrant_constructors,
                        )
                        self.local_locks[target.id] = lock_id
                    if ctor is not None:
                        self.local_types[target.id] = ctor
            if ctor in self.cfg.thread_constructors:
                for target in targets:
                    chain = receiver_chain(target)
                    if chain is not None:
                        self.thread_chains.add(chain)
                        if self.f.thread_creates:
                            self.f.thread_creates[-1].assigned.append(chain)
        elif isinstance(stmt, ast.Assign) and isinstance(value, ast.Name):
            # aliasing: ``w.thread = thread``
            if (value.id,) in self.thread_chains:
                for target in targets:
                    chain = receiver_chain(target)
                    if chain is not None:
                        self.thread_chains.add(chain)
                        for tc in self.f.thread_creates:
                            if (value.id,) in tc.assigned:
                                tc.assigned.append(chain)

    def store_target(
        self, target: ast.expr, stmt: ast.stmt, held: Tuple[str, ...]
    ) -> None:
        node: ast.expr = target
        if isinstance(node, (ast.Tuple, ast.List)):
            for elt in node.elts:
                self.store_target(elt, stmt, held)
            return
        if isinstance(node, (ast.Subscript,)):
            self.expression(node.slice, held)
            node = node.value
        chain = receiver_chain(node)
        if chain is None:
            return
        if len(chain) >= 2 and chain[0] == "self" and self.f.class_qualname:
            self.f.self_writes.append(
                (chain[1], stmt.lineno, stmt.col_offset, held)
            )
        elif len(chain) == 1:
            name = chain[0]
            if isinstance(target, ast.Subscript):
                # NAME[...] = — container mutation visible module-wide
                if name in self.module_globals and name not in self.local_names:
                    self.f.global_writes.append(
                        (name, stmt.lineno, stmt.col_offset, held)
                    )
            elif name in self.global_decls:
                self.f.global_writes.append(
                    (name, stmt.lineno, stmt.col_offset, held)
                )
            else:
                self.local_names.add(name)

    # -- expressions ----------------------------------------------------
    def expression(self, expr: ast.expr, held: Tuple[str, ...]) -> None:
        for node in self._walk_expr(expr):
            if isinstance(node, ast.Call):
                self.call(node, held)

    def _walk_expr(self, expr: ast.expr):
        stack = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Lambda):
                continue  # deferred body: does not run under the held set
            yield node
            stack.extend(
                child
                for child in ast.iter_child_nodes(node)
                if isinstance(child, ast.expr)
                or isinstance(child, (ast.keyword, ast.comprehension))
            )

    def call(self, node: ast.Call, held: Tuple[str, ...]) -> None:
        self.f.callsites.append((node.lineno, node.col_offset, held))
        qualified = _qualify_call(self.tracker, node)
        chain = receiver_chain(node.func) or ()
        final = chain[-1] if chain else None

        # blocking primitives -------------------------------------------
        if qualified in self.cfg.blocking_calls:
            self.f.blocking.append(
                BlockingCall(qualified, node.lineno, node.col_offset, held)
            )
        elif final in self.cfg.blocking_fanout_names:
            self.f.blocking.append(
                BlockingCall(final, node.lineno, node.col_offset, held)
            )
        elif final == "join" and len(chain) >= 2:
            timeout = _join_has_timeout(node)
            if timeout is not None:
                self.f.joins.append(
                    JoinCall(chain[:-1], node.lineno, node.col_offset, timeout)
                )
                self.f.blocking.append(
                    BlockingCall("join", node.lineno, node.col_offset, held)
                )
        elif final in self.cfg.queue_blocking_methods and len(chain) >= 2:
            recv_type = self.type_of(chain[:-1])
            if recv_type is not None and recv_type.split(".")[-1].endswith("Queue"):
                self.f.blocking.append(
                    BlockingCall(
                        f"queue.{final}", node.lineno, node.col_offset, held
                    )
                )

        # waits ----------------------------------------------------------
        if final == "wait" and len(chain) >= 2:
            recv = chain[:-1]
            recv_type = self.type_of(recv) or self._param_type(recv)
            kind = "unknown"
            if recv_type in self.cfg.event_types:
                kind = "event"
            elif recv_type in self.cfg.condition_types:
                kind = "condition"
            has_timeout = bool(node.args) or _kwarg(node, "timeout") is not None
            self.f.waits.append(
                WaitCall(
                    line=node.lineno,
                    col=node.col_offset,
                    has_timeout=has_timeout,
                    recv_kind=kind,
                    in_unbounded_loop="while_true" in self.loop_stack,
                    in_while_loop=any(
                        k in ("while", "while_true") for k in self.loop_stack
                    ),
                    held=held,
                )
            )
            if not has_timeout and kind != "condition":
                # an untimed non-condition wait blocks the thread outright
                self.f.blocking.append(
                    BlockingCall("wait", node.lineno, node.col_offset, held)
                )

        # fork primitives ------------------------------------------------
        if qualified in self.cfg.fork_calls or final in self.cfg.fork_names:
            self.f.forks.append(
                ForkCall(
                    qualified or final or "?",
                    node.lineno,
                    node.col_offset,
                    held,
                )
            )

        # thread lifecycle ----------------------------------------------
        if qualified in self.cfg.thread_constructors:
            target_expr = _kwarg(node, "target")
            self.f.thread_creates.append(
                ThreadCreate(
                    line=node.lineno,
                    col=node.col_offset,
                    target=self._target_name(target_expr),
                    has_name=_kwarg(node, "name") is not None,
                    daemon=_literal_bool(_kwarg(node, "daemon")),
                )
            )
        elif final == "start" and len(chain) >= 2:
            recv = chain[:-1]
            if recv in self.thread_chains:
                for tc in self.f.thread_creates:
                    if recv in tc.assigned:
                        tc.started = True
        elif final == "is_alive" and len(chain) >= 2:
            self.f.alive_checks.append((chain[:-1], node.lineno))

        # self-attr mutation through container methods -------------------
        if (
            final in self.cfg.mutating_methods
            and len(chain) >= 3
            and chain[0] == "self"
            and self.f.class_qualname
        ):
            self.f.self_writes.append(
                (chain[1], node.lineno, node.col_offset, held)
            )
        elif (
            final in self.cfg.mutating_methods
            and len(chain) == 2
            and chain[0] in self.module_globals
            and chain[0] not in self.local_names
            and chain[0] not in self.local_types
        ):
            self.f.global_writes.append(
                (chain[0], node.lineno, node.col_offset, held)
            )

    def _param_type(self, chain: Tuple[str, ...]) -> Optional[str]:
        return self.local_types.get(chain[0]) if len(chain) == 1 else None

    def _target_name(self, expr: Optional[ast.expr]) -> Optional[str]:
        if expr is None:
            return None
        if isinstance(expr, ast.Name):
            if expr.id in self.module_defs:
                return f"{self.module}.{expr.id}"
            qualified = self.tracker.qualify(expr)
            return qualified or expr.id
        chain = receiver_chain(expr)
        if chain is None:
            return None
        if chain[0] == "self" and len(chain) == 2 and self.f.class_qualname:
            return f"{self.f.class_qualname}.{chain[1]}"
        qualified = self.tracker.qualify(expr)
        return qualified or f"?.{chain[-1]}"


def _annotation_name(tracker: ImportTracker, node: Optional[ast.expr]) -> Optional[str]:
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, (ast.Name, ast.Attribute)):
        return tracker.qualify(node)
    return None


def _collect_functions(
    facts: ConcurrencyFacts, ctx: FileContext, cfg: ConcurrencyConfig
) -> None:
    module = facts.module_of[ctx.rel_path]
    tracker = ImportTracker(ctx.tree)
    module_defs = {
        stmt.name
        for stmt in ctx.tree.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
    }
    module_globals: Set[str] = set()
    for stmt in ctx.tree.body:
        if isinstance(stmt, ast.Assign):
            for t in stmt.targets:
                if isinstance(t, ast.Name):
                    module_globals.add(t.id)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(stmt.target, ast.Name):
                module_globals.add(stmt.target.id)

    def visit(
        node: ast.AST, owner: str, class_qualname: Optional[str]
    ) -> None:
        for stmt in ast.iter_child_nodes(node):
            if isinstance(stmt, ast.ClassDef):
                visit(stmt, f"{owner}.{stmt.name}", f"{owner}.{stmt.name}")
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{owner}.{stmt.name}"
                f = FuncFacts(
                    qualname=qual,
                    name=stmt.name,
                    rel_path=ctx.rel_path,
                    line=stmt.lineno,
                    class_qualname=class_qualname,
                )
                walker = _FunctionWalker(
                    facts, f, ctx, cfg, tracker, module, module_defs, module_globals
                )
                args = stmt.args
                for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                    ann = _annotation_name(tracker, arg.annotation)
                    if ann is not None:
                        walker.local_types[arg.arg] = ann
                walker.walk(stmt.body, ())
                facts.funcs[qual] = f
                # nested definitions get ``.<locals>.`` scoping like flow
                visit(stmt, f"{qual}.<locals>", None)

    visit(ctx.tree, module, None)


def collect_facts(
    contexts: Sequence[FileContext], cfg: ConcurrencyConfig
) -> ConcurrencyFacts:
    """Collect concurrency facts for the given (non-test) files."""
    facts = ConcurrencyFacts()
    for ctx in contexts:
        facts.contexts[ctx.rel_path] = ctx
        _collect_definitions(facts, ctx, cfg)
    for ctx in contexts:
        _collect_functions(facts, ctx, cfg)
    return facts
