"""RL025 — Event/Condition misuse.

Two missed-wakeup shapes, both per-file:

* ``Event.wait()`` without a timeout inside an unbounded loop — if the
  setter dies (worker crash, lost message) the waiter hangs forever with
  no opportunity to observe shutdown; the engine's own idiom is
  ``while not stop.wait(interval):``;
* ``Condition.wait()`` outside a ``while``-predicate loop — condition
  waits are specified to allow spurious wakeups, and an ``if``-guarded
  or bare wait acts on a predicate that may already be false again.
"""

from __future__ import annotations

from typing import List

from ..engine import Finding
from .config import ConcurrencyConfig
from .model import ConcurrencyFacts

__all__ = ["run_events_rule"]


def run_events_rule(
    facts: ConcurrencyFacts, cfg: ConcurrencyConfig
) -> List[Finding]:
    findings: List[Finding] = []
    for f in facts.funcs.values():
        for w in f.waits:
            if (
                w.recv_kind == "event"
                and not w.has_timeout
                and w.in_unbounded_loop
            ):
                findings.append(
                    Finding(
                        rule="RL025",
                        path=f.rel_path,
                        line=w.line,
                        col=w.col,
                        message=(
                            "Event.wait() without a timeout inside an "
                            "unbounded loop: if the setter dies the waiter "
                            "hangs forever — use wait(timeout) and re-check "
                            "the exit condition each lap"
                        ),
                    )
                )
            if w.recv_kind == "condition" and not w.in_while_loop:
                findings.append(
                    Finding(
                        rule="RL025",
                        path=f.rel_path,
                        line=w.line,
                        col=w.col,
                        message=(
                            "Condition.wait() outside a while-predicate "
                            "loop: condition waits allow spurious wakeups "
                            "and the predicate may be false again by the "
                            "time the waiter runs — wrap the wait in "
                            "'while not predicate: cond.wait()'"
                        ),
                    )
                )
    return findings
