"""Configuration of the concurrency-safety pass (RL020–RL025).

Everything here is data, like :mod:`repro_lint.resources.config`: the
test suite lints synthetic projects with the production model, and the
production tree can be analyzed with a tightened one.  Constructor names
are matched on resolved qualified names (``threading.Lock``); method
names (``wait``, ``join``) on the final attribute, because receivers are
resolved best-effort only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..flow.config import FlowConfig

__all__ = ["ConcurrencyConfig", "ConcurrencyOptions"]


@dataclass
class ConcurrencyConfig:
    """Knobs of the six concurrency rules."""

    # -- lock discovery (all rules) ------------------------------------
    #: constructors whose result is a mutual-exclusion lock
    lock_constructors: Tuple[str, ...] = (
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
    )
    #: the subset of :attr:`lock_constructors` that is reentrant — a
    #: nested re-acquisition on the same thread is legal, so RL021 does
    #: not flag self-edges for these (a bare ``Condition()`` wraps an
    #: RLock)
    reentrant_constructors: Tuple[str, ...] = (
        "threading.RLock",
        "threading.Condition",
    )
    #: attribute names assumed to be locks even when their construction
    #: is out of view (``with self._lock:`` over an inherited attribute)
    lock_attr_fallbacks: Tuple[str, ...] = ("_lock",)
    #: method names for which the flow layer's ``?.m`` unique-method
    #: resolution is *not* trusted when joining lock regions to callees:
    #: these almost always hit builtin containers/strings, and a
    #: misresolution onto the one project method with the same name
    #: fabricates deadlock edges (``_REGISTRY.clear()`` is not
    #: ``SolverCache.clear``)
    opaque_method_blocklist: Tuple[str, ...] = (
        "add",
        "append",
        "clear",
        "copy",
        "count",
        "discard",
        "extend",
        "get",
        "index",
        "insert",
        "items",
        "join",
        "keys",
        "pop",
        "popitem",
        "put",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "split",
        "strip",
        "update",
        "values",
    )

    # -- RL020: shared-state writes ------------------------------------
    #: thread-spawning constructors whose ``target=`` marks an entry point
    thread_constructors: Tuple[str, ...] = (
        "threading.Thread",
        "threading.Timer",
    )
    #: functions treated as thread entries by (final) name even when no
    #: ``Thread(target=...)`` site is in view — the engine's worker loops
    #: and transport pumps run on threads the transports spawn
    thread_entry_names: Tuple[str, ...] = (
        "worker_loop",
        "_heartbeat_loop",
        "pump",
    )
    #: constructors whose instances are internally synchronized — an
    #: attribute bound to one of these in ``__init__`` is queue-mediated
    #: and exempt from RL020
    sync_constructors: Tuple[str, ...] = (
        "threading.Event",
        "threading.Condition",
        "threading.Lock",
        "threading.RLock",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "threading.Barrier",
        "threading.local",
        "queue.Queue",
        "queue.SimpleQueue",
        "queue.LifoQueue",
        "queue.PriorityQueue",
        "multiprocessing.Queue",
        "multiprocessing.SimpleQueue",
        "multiprocessing.JoinableQueue",
    )
    #: container methods that mutate their receiver in place
    mutating_methods: Tuple[str, ...] = (
        "append",
        "appendleft",
        "extend",
        "insert",
        "pop",
        "popleft",
        "popitem",
        "remove",
        "discard",
        "clear",
        "update",
        "setdefault",
        "add",
        "sort",
        "reverse",
        "move_to_end",
    )

    # -- RL022: blocking calls under a lock ----------------------------
    #: resolved qualified names that block the calling thread
    blocking_calls: Tuple[str, ...] = (
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "os.fork",
        "os.forkpty",
        "os.wait",
        "os.waitpid",
        "os.system",
    )
    #: final-name functions that fan out to (and wait for) workers
    blocking_fanout_names: Tuple[str, ...] = ("fork_map",)
    #: attribute names whose receiver must be queue-typed for a bare
    #: ``.get()``/``.put()`` to count as blocking (``dict.get`` is not)
    queue_blocking_methods: Tuple[str, ...] = ("get", "put")

    # -- RL023: fork safety --------------------------------------------
    #: resolved qualified names that fork the process
    fork_calls: Tuple[str, ...] = ("os.fork", "os.forkpty")
    #: final-name helpers/constructors that fork under the hood
    fork_names: Tuple[str, ...] = ("fork_map", "ForkTransport")

    # -- RL024: thread lifecycle ---------------------------------------
    #: path prefixes where every thread must carry ``name=`` and
    #: ``daemon=True`` (the distributed engine: tracebacks, the lock
    #: tracer and the dashboard all attribute activity by thread name)
    thread_name_zones: Tuple[str, ...] = ("src/repro/distributed/",)
    #: function (final) names treated as shutdown paths — an untimed
    #: ``join()`` there can hang teardown forever
    shutdown_names: Tuple[str, ...] = (
        "stop",
        "shutdown",
        "close",
        "terminate",
        "atexit",
        "__exit__",
        "__del__",
    )

    # -- RL025: Event/Condition misuse ---------------------------------
    #: annotation/constructor names identifying waitable primitives
    event_types: Tuple[str, ...] = ("threading.Event", "multiprocessing.Event")
    condition_types: Tuple[str, ...] = ("threading.Condition",)


@dataclass
class ConcurrencyOptions:
    """Runtime switches for one concurrency-pass invocation."""

    enabled: bool = True
    #: worker processes for cold summary extraction (<=1 = serial)
    jobs: int = 1
    #: content-addressed summary cache shared with ``--flow``/``--resources``
    cache_dir: Optional[str] = None
    config: ConcurrencyConfig = field(default_factory=ConcurrencyConfig)
    #: extraction model (the call graph is built from flow summaries)
    flow_config: FlowConfig = field(default_factory=FlowConfig)
