"""RL021 — lock-order cycles, and the shared lock-graph machinery.

The lock-acquisition graph has one node per project lock and an edge
``A -> B`` whenever some thread can acquire ``B`` while holding ``A``:

* **lexically** — ``with A: with B:`` nesting inside one function;
* **interprocedurally** — a call made under ``A`` to a function whose
  transitive acquisition closure contains ``B`` (computed over the flow
  call graph, SCC-at-a-time in reverse topological order).

Two threads traversing a cycle in this graph in opposite orders deadlock;
RL021 flags every edge that participates in a cycle, with the witness
site of the acquisition.  A *self*-edge is flagged only for non-reentrant
locks (``threading.Lock``), where re-acquisition deadlocks a single
thread outright.

:func:`static_lock_order` exports the same graph as plain data so the
runtime oracle (``tools/lock_tracer.py``) can assert observed
acquisition orders against the static model.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from ..engine import Finding
from ..flow.program import ProgramIndex
from .config import ConcurrencyConfig
from .model import ConcurrencyFacts

__all__ = [
    "callee_map",
    "acquires_closure",
    "build_lock_graph",
    "run_lock_order_rule",
    "static_lock_order",
]


def callee_map(
    index: ProgramIndex, cfg: ConcurrencyConfig
) -> Dict[str, Dict[Tuple[int, int], str]]:
    """``{caller qualname: {(line, col): callee qualname}}`` from the flow
    summaries — the join key between lock regions and the call graph.

    ``?.m`` opaque-receiver sites whose method name is on
    :attr:`~.config.ConcurrencyConfig.opaque_method_blocklist` are left
    unresolved: the unique-method heuristic misfires on builtin
    containers and would fabricate lock edges.
    """
    blocked = set(cfg.opaque_method_blocklist)
    out: Dict[str, Dict[Tuple[int, int], str]] = {}
    for qual, fn in index.functions.items():
        resolved: Dict[Tuple[int, int], str] = {}
        for site in fn.callsites:
            name = site.callee
            if name and name.startswith("?.") and name[2:] in blocked:
                continue
            callee = index.callee_function(name)
            if callee is not None:
                resolved[(site.line, site.col)] = callee.qualname
        out[qual] = resolved
    return out


def acquires_closure(
    facts: ConcurrencyFacts, index: ProgramIndex
) -> Dict[str, Set[str]]:
    """Transitive lock-acquisition closure per function (SCCs collapse)."""
    direct: Dict[str, Set[str]] = {
        q: {lock_id for lock_id, _ in f.acquisitions}
        for q, f in facts.funcs.items()
        if f.acquisitions
    }
    result: Dict[str, Set[str]] = {}
    for scc in index.sccs:
        acc: Set[str] = set()
        for q in scc:
            acc |= direct.get(q, set())
        members = set(scc)
        for q in scc:
            for callee in index.edges.get(q, ()):
                if callee not in members:
                    acc |= result.get(callee, set())
        for q in scc:
            result[q] = acc
    for q, locks in direct.items():
        result.setdefault(q, set(locks))
    return result


def build_lock_graph(
    facts: ConcurrencyFacts,
    index: Optional[ProgramIndex],
    cfg: ConcurrencyConfig,
) -> Tuple[Dict[str, Set[str]], Dict[Tuple[str, str], Tuple[str, int]]]:
    """The acquisition-order graph and a witness site per edge."""
    edges: Dict[str, Set[str]] = {}
    witness: Dict[Tuple[str, str], Tuple[str, int]] = {}

    def add(a: str, b: str, rel_path: str, line: int) -> None:
        if a == b:
            return
        edges.setdefault(a, set()).add(b)
        witness.setdefault((a, b), (rel_path, line))

    for f in facts.funcs.values():
        for a, b, line in f.direct_edges:
            add(a, b, f.rel_path, line)

    if index is not None:
        closure = acquires_closure(facts, index)
        callees = callee_map(index, cfg)
        for qual, f in facts.funcs.items():
            sites = callees.get(qual)
            if not sites:
                continue
            for line, col, held in f.callsites:
                if not held:
                    continue
                callee = sites.get((line, col))
                if callee is None:
                    continue
                for acquired in closure.get(callee, ()):
                    for h in held:
                        add(h, acquired, f.rel_path, line)
    return edges, witness


def _sccs(edges: Dict[str, Set[str]]) -> List[List[str]]:
    """Tarjan SCCs of the (small) lock graph, iterative."""
    index_of: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    out: List[List[str]] = []
    counter = [0]
    nodes = sorted(set(edges) | {d for ds in edges.values() for d in ds})
    for root in nodes:
        if root in index_of:
            continue
        work: List[Tuple[str, List[str]]] = [
            (root, sorted(edges.get(root, ())))
        ]
        index_of[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, succs = work[-1]
            advanced = False
            while succs:
                succ = succs.pop(0)
                if succ not in index_of:
                    index_of[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, sorted(edges.get(succ, ()))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index_of[node]:
                scc: List[str] = []
                while True:
                    top = stack.pop()
                    on_stack.discard(top)
                    scc.append(top)
                    if top == node:
                        break
                out.append(scc)
    return out


def run_lock_order_rule(
    facts: ConcurrencyFacts,
    index: Optional[ProgramIndex],
    cfg: ConcurrencyConfig,
) -> List[Finding]:
    findings: List[Finding] = []

    # non-reentrant re-acquisition: a single thread deadlocks on itself
    for f in facts.funcs.values():
        for lock_id, line in f.reacquisitions:
            info = facts.locks.get(lock_id)
            if info is not None and not info.reentrant:
                findings.append(
                    Finding(
                        rule="RL021",
                        path=f.rel_path,
                        line=line,
                        col=0,
                        message=(
                            f"non-reentrant lock {lock_id} ({info.kind}) "
                            f"re-acquired while already held — guaranteed "
                            f"self-deadlock; use threading.RLock or "
                            f"restructure the critical section"
                        ),
                    )
                )

    edges, witness = build_lock_graph(facts, index, cfg)
    for scc in _sccs(edges):
        if len(scc) < 2:
            continue
        members = set(scc)
        cycle = " -> ".join([*sorted(scc), sorted(scc)[0]])
        for a in sorted(members):
            for b in sorted(edges.get(a, ())):
                if b not in members:
                    continue
                rel_path, line = witness[(a, b)]
                findings.append(
                    Finding(
                        rule="RL021",
                        path=rel_path,
                        line=line,
                        col=0,
                        message=(
                            f"lock-order cycle ({cycle}): this site "
                            f"acquires {b} while holding {a}, and a "
                            f"reversed ordering exists elsewhere in the "
                            f"cycle — two threads traversing it in "
                            f"opposite orders deadlock; pick one global "
                            f"acquisition order"
                        ),
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# export for the runtime oracle
# ---------------------------------------------------------------------------


def static_lock_order(
    paths: Sequence[str],
    root: Optional[Union[str, Path]] = None,
    cache_dir: Optional[str] = None,
    jobs: int = 1,
    config: Optional[ConcurrencyConfig] = None,
) -> Dict[str, Any]:
    """Static lock table + acquisition-order graph as plain data.

    ``{"locks": [{"id", "kind", "path", "line", "reentrant"}, ...],
    "edges": [{"src", "dst", "path", "line"}, ...]}`` — the contract the
    runtime lock tracer (``tools/lock_tracer.py``) validates observed
    acquisition orders against.  Locks are matched by creation site
    ``(path, line)``.
    """
    from ..engine import FileContext, LintConfig, _parse, _relativize, collect_files
    from ..flow.cache import SummaryCache, extract_summaries
    from ..flow.program import ProgramIndex as _ProgramIndex
    from .config import ConcurrencyOptions
    from .model import collect_facts

    opts = ConcurrencyOptions(cache_dir=cache_dir, jobs=jobs)
    if config is not None:
        opts.config = config
    base = Path(root) if root is not None else Path.cwd()
    lint_cfg = LintConfig()
    contexts: List[FileContext] = []
    for path in collect_files(paths, root=base):
        try:
            source, tree = _parse(path)
        except SyntaxError:
            continue
        contexts.append(
            FileContext(
                path=path,
                rel_path=_relativize(path, base),
                source=source,
                tree=tree,
                config=lint_cfg,
            )
        )
    non_test = [ctx for ctx in contexts if not ctx.is_test_file]
    facts = collect_facts(non_test, opts.config)
    cache = SummaryCache(opts.cache_dir) if opts.cache_dir else None
    items = [(ctx.rel_path, ctx.source, ctx.is_test_file) for ctx in contexts]
    summaries = extract_summaries(items, opts.flow_config, jobs=opts.jobs, cache=cache)
    index = _ProgramIndex(summaries)
    edges, witness = build_lock_graph(facts, index, opts.config)
    return {
        "locks": [
            {
                "id": li.lock_id,
                "kind": li.kind,
                "path": li.rel_path,
                "line": li.line,
                "reentrant": li.reentrant,
            }
            for li in sorted(facts.locks.values(), key=lambda li: li.lock_id)
        ],
        "edges": [
            {
                "src": a,
                "dst": b,
                "path": witness[(a, b)][0],
                "line": witness[(a, b)][1],
            }
            for a in sorted(edges)
            for b in sorted(edges[a])
        ],
    }
