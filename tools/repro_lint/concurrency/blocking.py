"""RL022 — blocking call under a lock.

A thread that blocks (``time.sleep``, ``subprocess``, ``queue.get``/
``put`` on a queue-typed receiver, any thread/process ``join``, an
untimed ``Event.wait``, a ``fork_map`` fan-out) while holding a lock
starves every other acquirer for the duration — and deadlocks outright
when the unblocking party needs that same lock.  The rule fires on

* direct blocking primitives inside a ``with <lock>:`` region, and
* calls made under a lock into project functions whose transitive
  *may-block* closure (over the flow call graph) contains a primitive.

``Condition.wait`` under its own condition is the designed pattern (the
wait releases the lock) and is never flagged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..engine import Finding
from ..flow.program import ProgramIndex
from .config import ConcurrencyConfig
from .locks import callee_map
from .model import ConcurrencyFacts

__all__ = ["may_block_closure", "run_blocking_rule"]

_Reason = Tuple[str, str, int]  # (primitive, rel_path, line)


def may_block_closure(
    facts: ConcurrencyFacts, index: ProgramIndex
) -> Dict[str, _Reason]:
    """``{qualname: (primitive, path, line)}`` for every function that can
    block, directly or through callees (SCC fixpoint, callees first)."""
    direct: Dict[str, _Reason] = {}
    for qual, f in facts.funcs.items():
        if f.blocking:
            b = f.blocking[0]
            direct[qual] = (b.name, f.rel_path, b.line)
    result: Dict[str, _Reason] = {}
    for scc in index.sccs:
        reason: Optional[_Reason] = None
        for q in sorted(scc):
            if q in direct:
                reason = direct[q]
                break
        if reason is None:
            members = set(scc)
            for q in sorted(scc):
                for callee in sorted(index.edges.get(q, ())):
                    if callee not in members and callee in result:
                        reason = result[callee]
                        break
                if reason is not None:
                    break
        if reason is not None:
            for q in scc:
                result[q] = reason
    for q, reason in direct.items():
        result.setdefault(q, reason)
    return result


def run_blocking_rule(
    facts: ConcurrencyFacts,
    index: Optional[ProgramIndex],
    cfg: ConcurrencyConfig,
) -> List[Finding]:
    findings: List[Finding] = []
    reported: Set[Tuple[str, int, int]] = set()

    # direct: a blocking primitive lexically inside a lock region
    for qual, f in facts.funcs.items():
        for b in f.blocking:
            if not b.held:
                continue
            key = (qual, b.line, b.col)
            reported.add(key)
            findings.append(
                Finding(
                    rule="RL022",
                    path=f.rel_path,
                    line=b.line,
                    col=b.col,
                    message=(
                        f"blocking call {b.name} while holding "
                        f"{', '.join(b.held)}: every other acquirer stalls "
                        f"for the duration (deadlock if the unblocking "
                        f"party needs the lock) — move the {b.name} "
                        f"outside the critical section"
                    ),
                )
            )

    # interprocedural: a call under a lock reaches a primitive
    if index is None:
        return findings
    blockers = may_block_closure(facts, index)
    callees = callee_map(index, cfg)
    for qual, f in facts.funcs.items():
        sites = callees.get(qual)
        if not sites:
            continue
        for line, col, held in f.callsites:
            if not held or (qual, line, col) in reported:
                continue
            callee = sites.get((line, col))
            if callee is None or callee not in blockers:
                continue
            prim, where_path, where_line = blockers[callee]
            reported.add((qual, line, col))
            findings.append(
                Finding(
                    rule="RL022",
                    path=f.rel_path,
                    line=line,
                    col=col,
                    message=(
                        f"call into {callee} while holding "
                        f"{', '.join(held)}: it can block in {prim} "
                        f"({where_path}:{where_line}) — hoist the call out "
                        f"of the critical section or bound it with a "
                        f"timeout"
                    ),
                )
            )
    return findings
