"""Concurrency-safety pass (RL020–RL025).

Companion to :mod:`repro_lint.flow` and :mod:`repro_lint.resources`: this
package polices the *threaded* half of the codebase — the scheduler /
worker / transport triangle of :mod:`repro.distributed` and the locked
FFT workspaces — for the failure modes static typing cannot see:

* **RL020** — a field mutated both from a thread-entry function and from
  the scheduler/main path without a common lock (data race);
* **RL021** — lock-order cycles in the ``with <lock>`` acquisition graph
  across the call graph (deadlock);
* **RL022** — blocking calls (``queue.get``/``join``/``sleep``/
  ``subprocess``/``fork_map``) made while a lock is held (convoying,
  deadlock-by-starvation);
* **RL023** — fork while locks are held or from/after threads
  (fork-after-thread hazard: the child inherits locked locks);
* **RL024** — thread lifecycle hygiene (unnamed/undaemonized threads in
  the distributed engine, joins that cannot terminate or silently leak);
* **RL025** — ``Event``/``Condition`` misuse (untimed waits in unbounded
  loops, missed-wakeup patterns).

The static lock-order graph RL021 builds is also exported
(:func:`static_lock_order`) so the runtime oracle in
``tools/lock_tracer.py`` can assert observed acquisition orders against
it from the distributed chaos suite.
"""

from .config import ConcurrencyConfig, ConcurrencyOptions
from .locks import static_lock_order
from .runner import CONCURRENCY_RULE_IDS, run_concurrency_rules

__all__ = [
    "CONCURRENCY_RULE_IDS",
    "ConcurrencyConfig",
    "ConcurrencyOptions",
    "run_concurrency_rules",
    "static_lock_order",
]
