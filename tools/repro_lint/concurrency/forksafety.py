"""RL023 — fork-after-thread and fork-under-lock hazards.

``fork()`` snapshots the whole process but only the calling thread
survives in the child.  Any lock another thread held at fork time is
locked *forever* in the child — the classic fork-after-thread deadlock —
and buffered state (queues, condition variables) tears mid-update.  The
rule flags a fork-like call (``os.fork``, ``fork_map``,
``ForkTransport``, fork-context ``multiprocessing``) when

* a lock is lexically held at the call site;
* a caller can hold a lock across the call (interprocedural, over the
  flow call graph);
* the call is reachable from a thread entry (forking *from* a worker
  thread);
* a non-daemon thread was started earlier in the same function (the
  lexical fork-after-thread shape).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..engine import Finding
from ..flow.program import ProgramIndex
from .config import ConcurrencyConfig
from .locks import callee_map
from .model import ConcurrencyFacts
from .shared_state import thread_reachable

__all__ = ["run_fork_safety_rule"]


def _called_with_lock(
    facts: ConcurrencyFacts, index: ProgramIndex, cfg: ConcurrencyConfig
) -> Dict[str, Tuple[str, str, int]]:
    """``{qualname: (lock, caller path, caller line)}`` for every function
    some caller can invoke while holding a lock."""
    callees = callee_map(index, cfg)
    seeds: Dict[str, Tuple[str, str, int]] = {}
    for qual, f in facts.funcs.items():
        sites = callees.get(qual)
        if not sites:
            continue
        for line, col, held in f.callsites:
            if not held:
                continue
            callee = sites.get((line, col))
            if callee is not None:
                seeds.setdefault(callee, (held[-1], f.rel_path, line))
    out: Dict[str, Tuple[str, str, int]] = {}
    frontier = list(seeds)
    for qual in frontier:
        out.setdefault(qual, seeds[qual])
    while frontier:
        qual = frontier.pop()
        why = out[qual]
        for callee in index.edges.get(qual, ()):
            if callee not in out:
                out[callee] = why
                frontier.append(callee)
    return out


def run_fork_safety_rule(
    facts: ConcurrencyFacts,
    index: Optional[ProgramIndex],
    cfg: ConcurrencyConfig,
) -> List[Finding]:
    findings: List[Finding] = []
    reach: Dict[str, str] = {}
    under_lock: Dict[str, Tuple[str, str, int]] = {}
    if index is not None:
        reach = thread_reachable(facts, index, cfg)
        under_lock = _called_with_lock(facts, index, cfg)

    for qual, f in facts.funcs.items():
        # lexical fork-after-thread: a non-daemon thread started earlier
        started_nondaemon: List[Tuple[int, Optional[str]]] = [
            (tc.line, tc.assigned[0][-1] if tc.assigned else None)
            for tc in f.thread_creates
            if tc.started and tc.daemon is not True
        ]
        for fork in f.forks:
            if fork.held:
                findings.append(
                    Finding(
                        rule="RL023",
                        path=f.rel_path,
                        line=fork.line,
                        col=fork.col,
                        message=(
                            f"fork ({fork.name}) while holding "
                            f"{', '.join(fork.held)}: the child inherits "
                            f"the locked lock with no owner thread and "
                            f"deadlocks on first acquire — fork outside "
                            f"every critical section"
                        ),
                    )
                )
                continue
            if qual in reach:
                findings.append(
                    Finding(
                        rule="RL023",
                        path=f.rel_path,
                        line=fork.line,
                        col=fork.col,
                        message=(
                            f"fork ({fork.name}) reachable from thread "
                            f"entry {reach[qual]}: forking from a worker "
                            f"thread snapshots other threads' locks "
                            f"mid-critical-section — fork from the main "
                            f"thread only"
                        ),
                    )
                )
                continue
            if qual in under_lock:
                lock, cpath, cline = under_lock[qual]
                findings.append(
                    Finding(
                        rule="RL023",
                        path=f.rel_path,
                        line=fork.line,
                        col=fork.col,
                        message=(
                            f"fork ({fork.name}) while a caller can hold "
                            f"{lock} (call chain entered under the lock at "
                            f"{cpath}:{cline}) — the child inherits it "
                            f"locked; hoist the fork out of the locked "
                            f"call chain"
                        ),
                    )
                )
                continue
            earlier = [
                (line, name)
                for line, name in started_nondaemon
                if line < fork.line
            ]
            if earlier:
                line, name = earlier[0]
                label = f"thread {name!r}" if name else "a thread"
                findings.append(
                    Finding(
                        rule="RL023",
                        path=f.rel_path,
                        line=fork.line,
                        col=fork.col,
                        message=(
                            f"fork ({fork.name}) after starting non-daemon "
                            f"{label} (line {line}): locks that thread "
                            f"holds at fork time stay locked forever in "
                            f"the child — fork before spawning threads, or "
                            f"make the thread daemon and join it first"
                        ),
                    )
                )
    return findings
