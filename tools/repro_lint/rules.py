"""Per-file AST rules RL001–RL003 and RL005–RL009.

Each rule is a function ``(FileContext) -> Iterable[Finding]``; registration
happens in :mod:`repro_lint.registry`.  The cross-file fingerprint rule
RL004 lives in :mod:`repro_lint.project`.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional, Set

from .engine import FileContext, Finding
from .imports import ImportTracker

__all__ = [
    "rl001_float_equality",
    "rl002_convolution_outside_kernel",
    "rl003_global_rng",
    "rl005_wall_clock",
    "rl006_silent_except",
    "rl007_mutable_default",
    "rl008_math_in_hot_path",
    "rl009_runtime_assert",
]


def _finding(ctx: FileContext, rule: str, node: ast.AST, message: str) -> Finding:
    return Finding(
        rule=rule,
        path=ctx.rel_path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        message=message,
    )


# ----------------------------------------------------------------------
# RL001 — float equality
# ----------------------------------------------------------------------
def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_literal(node.operand)
    return False


def _is_tolerance_helper(node: ast.expr, imports: ImportTracker) -> bool:
    """``pytest.approx(...)`` (or an aliased import of it) as a comparator."""
    if not isinstance(node, ast.Call):
        return False
    qual = imports.qualify(node.func)
    return qual in ("pytest.approx", "numpy.testing.assert_allclose")


def rl001_float_equality(ctx: FileContext) -> Iterator[Finding]:
    """Float literals compared with ``==`` / ``!=``.

    Exact comparison against a float literal silently breaks under round-off
    (the optimizer then picks the wrong policy cell); use ``math.isclose``,
    an explicit threshold, or integer-coded state.  In test files, ``assert``
    statements are exempt: exact boundary values (``cdf(x) == 0.0`` outside
    the support) are legitimate oracles there.
    """
    imports = ImportTracker(ctx.tree)
    in_assert: Set[int] = set()
    if ctx.is_test_file:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                in_assert.update(id(c) for c in ast.walk(node))
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        if id(node) in in_assert:
            continue
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands[:-1], operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_tolerance_helper(left, imports) or _is_tolerance_helper(right, imports):
                continue
            if _is_float_literal(left) or _is_float_literal(right):
                yield _finding(
                    ctx,
                    "RL001",
                    node,
                    "float equality comparison; use math.isclose, an explicit "
                    "threshold, or integer-coded state",
                )
                break


# ----------------------------------------------------------------------
# RL002 — convolution outside the kernel layer
# ----------------------------------------------------------------------
_CONV_EXACT = {
    "numpy.convolve",
    "scipy.signal.fftconvolve",
    "scipy.signal.convolve",
    "scipy.signal.oaconvolve",
}
_CONV_PREFIXES = ("numpy.fft.", "scipy.fft.", "scipy.fftpack.")


def rl002_convolution_outside_kernel(ctx: FileContext) -> Iterator[Finding]:
    """Convolution/FFT primitives outside the blessed kernel modules.

    All convolution must go through the cached kernel layer
    (``core/convolution.py`` + ``distributions/spectral.py`` +
    ``distributions/grid.py``): ad-hoc ``fftconvolve`` calls bypass the
    shared spectra, the canonical FFT length and the tail bookkeeping.
    """
    if ctx.is_blessed_convolution:
        return
    imports = ImportTracker(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        qual = imports.qualify(node.func)
        if qual is None:
            continue
        if qual in _CONV_EXACT or qual.startswith(_CONV_PREFIXES):
            yield _finding(
                ctx,
                "RL002",
                node,
                f"direct call to {qual} outside the kernel layer; route "
                "convolutions through GridMass.conv / repro.distributions.spectral",
            )


# ----------------------------------------------------------------------
# RL003 — global-state RNG
# ----------------------------------------------------------------------
#: np.random attributes that *construct* explicit generators (allowed)
_NP_RANDOM_OK = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}
_STDLIB_RANDOM_STATEFUL = {
    "seed",
    "random",
    "randint",
    "randrange",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "gauss",
    "normalvariate",
    "expovariate",
    "betavariate",
    "paretovariate",
    "weibullvariate",
}


def rl003_global_rng(ctx: FileContext) -> Iterator[Finding]:
    """Global-state RNG (``np.random.seed`` / module-level ``random.*``).

    Hidden global RNG state breaks the replay guarantees of the estimator
    layer (chunked streams must be a function of ``n_reps`` alone) and makes
    ``jobs=1`` vs ``jobs=N`` runs diverge.  Pass an explicit
    ``np.random.Generator`` instead.
    """
    imports = ImportTracker(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        qual = imports.qualify(node.func)
        if qual is None:
            continue
        if qual.startswith("numpy.random."):
            tail = qual[len("numpy.random.") :]
            if tail.split(".")[0] not in _NP_RANDOM_OK:
                yield _finding(
                    ctx,
                    "RL003",
                    node,
                    f"global-state RNG call {qual}; pass an explicit "
                    "np.random.Generator (np.random.default_rng(seed))",
                )
        elif qual.startswith("random."):
            tail = qual[len("random.") :]
            if tail in _STDLIB_RANDOM_STATEFUL:
                yield _finding(
                    ctx,
                    "RL003",
                    node,
                    f"module-level stdlib RNG call {qual}; pass an explicit "
                    "np.random.Generator instead",
                )


# ----------------------------------------------------------------------
# RL005 — wall clock in the deterministic core
# ----------------------------------------------------------------------
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


def rl005_wall_clock(ctx: FileContext) -> Iterator[Finding]:
    """Wall-clock reads inside ``src/repro/core`` / ``src/repro/distributions``.

    The solver core is a pure function of (model, grid, policy); a clock
    read there means results depend on when they were computed — benchmarks
    and the analysis layer time themselves outside the core.
    """
    if not ctx.in_deterministic_zone:
        return
    imports = ImportTracker(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        qual = imports.qualify(node.func)
        if qual in _WALL_CLOCK:
            yield _finding(
                ctx,
                "RL005",
                node,
                f"wall-clock call {qual} inside the deterministic solver core",
            )


# ----------------------------------------------------------------------
# RL006 — silent exception handling
# ----------------------------------------------------------------------
def rl006_silent_except(ctx: FileContext) -> Iterator[Finding]:
    """Bare ``except:`` and ``except Exception: pass`` handlers.

    Bare handlers swallow ``KeyboardInterrupt``/``SystemExit``; an
    ``except Exception`` whose whole body is ``pass`` hides numerical
    failures (a ``ContractViolation`` included) without a trace.
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            yield _finding(
                ctx,
                "RL006",
                node,
                "bare except: catches KeyboardInterrupt/SystemExit; name the "
                "exception type",
            )
            continue
        if (
            isinstance(node.type, ast.Name)
            and node.type.id in ("Exception", "BaseException")
            and all(isinstance(stmt, ast.Pass) for stmt in node.body)
        ):
            yield _finding(
                ctx,
                "RL006",
                node,
                f"except {node.type.id}: pass silently swallows all errors; "
                "handle or at least log the failure",
            )


# ----------------------------------------------------------------------
# RL007 — mutable default arguments
# ----------------------------------------------------------------------
def _is_mutable_default(node: Optional[ast.expr]) -> bool:
    if node is None:
        return False
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("list", "dict", "set", "bytearray")
    return False


def rl007_mutable_default(ctx: FileContext) -> Iterator[Finding]:
    """Mutable default arguments (evaluated once, shared across calls)."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        defaults: List[Optional[ast.expr]] = [*node.args.defaults, *node.args.kw_defaults]
        for default in defaults:
            if _is_mutable_default(default):
                name = getattr(node, "name", "<lambda>")
                yield _finding(
                    ctx,
                    "RL007",
                    default if default is not None else node,
                    f"mutable default argument in {name}(); use None and "
                    "create the object inside the function",
                )


# ----------------------------------------------------------------------
# RL008 — scalar math.* on the array argument of a hot-path method
# ----------------------------------------------------------------------
_MATH_TRANSCENDENTAL = {
    "exp",
    "expm1",
    "log",
    "log1p",
    "log2",
    "log10",
    "sqrt",
    "pow",
    "sin",
    "cos",
    "tan",
    "asin",
    "acos",
    "atan",
    "atan2",
    "sinh",
    "cosh",
    "tanh",
    "erf",
    "erfc",
    "gamma",
    "lgamma",
}


def _array_param_name(fn: ast.FunctionDef) -> Optional[str]:
    """First data parameter of a vectorized method (skipping self/cls)."""
    args = [a.arg for a in fn.args.posonlyargs + fn.args.args]
    if args and args[0] in ("self", "cls"):
        args = args[1:]
    return args[0] if args else None


def rl008_math_in_hot_path(ctx: FileContext) -> Iterator[Finding]:
    """``math.*`` transcendentals applied to the array argument of a
    vectorized method (``pdf``/``cdf``/``sf``/... in the distributions
    package).

    ``math.exp`` silently truncates 0-d arrays and raises on real vectors —
    and even where it works it de-vectorizes the hot path.  Use the ``np.*``
    ufunc.  Scalar uses on distribution *parameters* (``math.log(self.x_m)``)
    are fine and not flagged.
    """
    if not ctx.in_hot_path_zone:
        return
    imports = ImportTracker(ctx.tree)
    hot = ctx.config.hot_path_methods
    for fn in ast.walk(ctx.tree):
        if not isinstance(fn, ast.FunctionDef) or fn.name not in hot:
            continue
        param = _array_param_name(fn)
        if param is None:
            continue
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            qual = imports.qualify(node.func)
            if qual is None or not qual.startswith("math."):
                continue
            if qual[len("math.") :] not in _MATH_TRANSCENDENTAL:
                continue
            touches_param = any(
                isinstance(sub, ast.Name) and sub.id == param
                for arg in node.args
                for sub in ast.walk(arg)
            )
            if touches_param:
                np_name = qual.replace("math.", "np.")
                yield _finding(
                    ctx,
                    "RL008",
                    node,
                    f"scalar {qual} applied to array argument {param!r} in "
                    f"hot-path method {fn.name}(); use {np_name}",
                )


# ----------------------------------------------------------------------
# RL009 — assert statements in shipped library code
# ----------------------------------------------------------------------
def rl009_runtime_assert(ctx: FileContext) -> Iterator[Finding]:
    """``assert`` statements in shipped library code (``src/repro``).

    ``python -O`` strips asserts, so an invariant guarded by one silently
    stops being checked in optimized deployments — the failure then
    surfaces far from its cause (or not at all).  Raise an explicit
    exception, or route opt-in invariants through ``repro._contracts``
    (whose checks survive ``-O`` and are toggled at runtime).  Test code is
    exempt: there ``assert`` is the assertion idiom.
    """
    if not ctx.in_no_assert_zone:
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assert):
            yield _finding(
                ctx,
                "RL009",
                node,
                "assert in shipped library code is stripped under python -O; "
                "raise an explicit exception or use repro._contracts",
            )


def iter_all(ctx: FileContext) -> Iterable[Finding]:  # pragma: no cover - debug aid
    """All per-file findings for one context (used interactively)."""
    for rule in (
        rl001_float_equality,
        rl002_convolution_outside_kernel,
        rl003_global_rng,
        rl005_wall_clock,
        rl006_silent_except,
        rl007_mutable_default,
        rl008_math_in_hot_path,
        rl009_runtime_assert,
    ):
        yield from rule(ctx)
