"""Best-effort resolution of attribute chains to fully-qualified names.

Several rules need to know that ``sfft.rfft`` means ``scipy.fft.rfft`` in a
module that did ``from scipy import fft as sfft``.  This tracker walks the
module's import statements and resolves ``ast.Call`` function expressions to
dotted names rooted at the real top-level module, so rules match on stable
qualified names instead of guessing at local aliases.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional

__all__ = ["ImportTracker"]


class ImportTracker:
    """Maps local names to the dotted module/object paths they denote."""

    def __init__(self, tree: ast.Module):
        self._aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # ``import a.b.c`` binds ``a`` unless aliased
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self._aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative imports stay project-local
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self._aliases[local] = f"{node.module}.{alias.name}"

    def qualify(self, node: ast.AST) -> Optional[str]:
        """Dotted name of an expression like ``np.fft.rfft``, if resolvable."""
        parts = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        parts.append(cur.id)
        parts.reverse()
        head = self._aliases.get(parts[0], parts[0])
        return ".".join([head] + parts[1:])
