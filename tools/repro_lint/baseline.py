"""Baseline ratchet: accept today's findings, fail only on new ones.

A baseline file records finding *identities* — ``(rule, path, message)``
with a multiplicity — deliberately without line numbers, so unrelated
edits that shift code around do not churn the file.  At lint time each
finding consumes one matching baseline slot; findings left over are *new*
and fail the run.  Baseline entries nothing consumed are *stale*: the debt
they grandfathered is gone, and ``--write-baseline`` shrinks the file —
the ratchet only ever tightens unless a human regenerates it.

The file is JSON (sorted keys, trailing newline) so diffs review cleanly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from .engine import Finding

__all__ = ["baseline_key", "write_baseline", "apply_baseline", "load_baseline"]

_FORMAT = "repro-lint-baseline-v1"


def baseline_key(finding: Finding) -> str:
    return f"{finding.rule}|{finding.path}|{finding.message}"


def write_baseline(findings: Sequence[Finding], path: Path) -> None:
    counts: Dict[str, int] = {}
    for f in findings:
        key = baseline_key(f)
        counts[key] = counts.get(key, 0) + 1
    payload = {"format": _FORMAT, "entries": dict(sorted(counts.items()))}
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")


def load_baseline(path: Path) -> Dict[str, int]:
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("format") != _FORMAT:
        raise ValueError(f"{path}: not a {_FORMAT} file")
    entries = data.get("entries", {})
    if not isinstance(entries, dict):
        raise ValueError(f"{path}: malformed 'entries'")
    return {str(k): int(v) for k, v in entries.items()}


def apply_baseline(
    findings: Sequence[Finding], path: Path
) -> Tuple[List[Finding], int, List[str]]:
    """Split findings against a baseline.

    Returns ``(new_findings, suppressed_count, stale_keys)`` where
    ``new_findings`` are not covered by the baseline, ``suppressed_count``
    is how many were, and ``stale_keys`` are baseline entries with unused
    multiplicity (debt that has since been paid down).
    """
    remaining = load_baseline(path)
    new: List[Finding] = []
    suppressed = 0
    for f in findings:
        key = baseline_key(f)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            suppressed += 1
        else:
            new.append(f)
    stale = sorted(k for k, v in remaining.items() if v > 0)
    return new, suppressed, stale
