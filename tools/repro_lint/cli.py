"""Command line front-end: ``python -m repro_lint`` / ``repro-lint``.

Exit codes: 0 = clean, 1 = findings, 2 = usage or internal error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .engine import Finding, LintConfig, lint_paths
from .registry import ALL_RULES, rule_catalogue

__all__ = ["main"]


def _parse_rule_list(raw: str) -> set:
    rules = {r.strip().upper() for r in raw.split(",") if r.strip()}
    unknown = rules - set(ALL_RULES)
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown rule(s): {', '.join(sorted(unknown))}; "
            f"available: {', '.join(ALL_RULES)}"
        )
    return rules


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Domain-aware static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests", "benchmarks"],
        help="files or directories to lint (default: src tests benchmarks)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "github"),
        default="text",
        help="output format: human-readable text or GitHub workflow annotations",
    )
    parser.add_argument(
        "--select",
        type=_parse_rule_list,
        default=None,
        metavar="RL00x[,RL00y]",
        help="run only these rules",
    )
    parser.add_argument(
        "--ignore",
        type=_parse_rule_list,
        default=set(),
        metavar="RL00x[,RL00y]",
        help="skip these rules",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="repository root the zone configuration is relative to "
        "(default: current directory)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _render(finding: Finding, fmt: str) -> str:
    if fmt == "github":
        # https://docs.github.com/actions/reference/workflow-commands
        message = finding.message.replace("\n", " ")
        return (
            f"::error file={finding.path},line={finding.line},"
            f"col={finding.col + 1},title={finding.rule}::{message}"
        )
    return (
        f"{finding.path}:{finding.line}:{finding.col + 1}: "
        f"{finding.rule} {finding.message}"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule_id, summary in rule_catalogue().items():
            print(f"{rule_id}  {summary}")
        return 0
    config = LintConfig(select=args.select, ignore=args.ignore)
    root = Path(args.root) if args.root else None
    try:
        findings: List[Finding] = lint_paths(args.paths, config=config, root=root)
    except FileNotFoundError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2
    for finding in findings:
        print(_render(finding, args.format))
    if findings:
        counts: dict = {}
        for f in findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        summary = ", ".join(f"{k}: {v}" for k, v in sorted(counts.items()))
        print(f"\n{len(findings)} finding(s) ({summary})", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
