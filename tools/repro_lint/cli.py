"""Command line front-end: ``python -m repro_lint`` / ``repro-lint``.

Two modes share one option surface:

* ``repro-lint [paths...]`` — lint; ``--flow`` adds the whole-program
  rules (RL010–RL013) with ``--jobs``/``--cache-dir`` controlling the
  extraction fan-out and the incremental summary cache, and
  ``--baseline``/``--write-baseline`` operating the ratchet file;
* ``repro-lint audit-contracts [paths...]`` — render the contract/test
  coverage audit of the public kernel entry points (advisory: exit 0).

Exit codes: 0 = clean, 1 = findings, 2 = usage or internal error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .engine import Finding, LintConfig, lint_paths
from .registry import ALL_RULES, rule_catalogue

__all__ = ["main"]

_DEFAULT_PATHS = ["src", "tests", "benchmarks", "tools", "examples"]


def _parse_rule_list(raw: str) -> set:
    rules = {r.strip().upper() for r in raw.split(",") if r.strip()}
    unknown = rules - set(ALL_RULES)
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown rule(s): {', '.join(sorted(unknown))}; "
            f"available: {', '.join(ALL_RULES)}"
        )
    return rules


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Domain-aware static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=_DEFAULT_PATHS,
        help=f"files or directories to lint (default: {' '.join(_DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "github", "sarif"),
        default="text",
        help="output format: human-readable text, GitHub workflow "
        "annotations, or SARIF 2.1.0",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout (useful for "
        "uploading SARIF as a CI artifact)",
    )
    parser.add_argument(
        "--select",
        type=_parse_rule_list,
        default=None,
        metavar="RL00x[,RL00y]",
        help="run only these rules",
    )
    parser.add_argument(
        "--ignore",
        type=_parse_rule_list,
        default=set(),
        metavar="RL00x[,RL00y]",
        help="skip these rules",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="repository root the zone configuration is relative to "
        "(default: current directory)",
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help="also run the whole-program rules RL010-RL013 "
        "(interprocedural taint + fork_map safety)",
    )
    parser.add_argument(
        "--resources",
        action="store_true",
        help="also run the resource- and numeric-safety rules RL014-RL019 "
        "(arena aliasing, shared-memory lifecycle, dtype flow, jit-twin "
        "parity, engine capabilities, cache-key completeness)",
    )
    parser.add_argument(
        "--concurrency",
        action="store_true",
        help="also run the concurrency-safety rules RL020-RL025 "
        "(interprocedural races, lock-order cycles, blocking under locks, "
        "fork safety, thread lifecycle, Event/Condition misuse)",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="rewrite files in place to fix mechanically-safe findings "
        "(RL007 mutable defaults, RL008 math.* in hot paths), then lint "
        "the fixed tree",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for --flow/--resources/--concurrency "
        "summary extraction (default: 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed summary cache shared by --flow, "
        "--resources and --concurrency; warm re-runs skip parsing entirely",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="ratchet file: findings recorded there are grandfathered, "
        "only new ones fail the run",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to --baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _escape_property(value: str) -> str:
    """Escape a workflow-command *property* value (file=, title=, ...)."""
    return (
        value.replace("%", "%25")
        .replace("\r", "%0D")
        .replace("\n", "%0A")
        .replace(":", "%3A")
        .replace(",", "%2C")
    )


def _escape_message(value: str) -> str:
    """Escape workflow-command *message* data (after the ``::``)."""
    return value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def _render(finding: Finding, fmt: str) -> str:
    if fmt == "github":
        # https://docs.github.com/actions/reference/workflow-commands —
        # '%'/CR/LF must be URL-escaped everywhere; property values must
        # additionally escape ':' and ',' or a message containing '::'
        # corrupts the annotation
        return (
            f"::error file={_escape_property(finding.path)},"
            f"line={finding.line},col={finding.col + 1},"
            f"title={_escape_property(finding.rule)}"
            f"::{_escape_message(finding.message)}"
        )
    return (
        f"{finding.path}:{finding.line}:{finding.col + 1}: "
        f"{finding.rule} {finding.message}"
    )


def _emit(text: str, output: Optional[str]) -> None:
    if output is None:
        sys.stdout.write(text)
    else:
        Path(output).write_text(text, encoding="utf-8")


def _run_audit(args: argparse.Namespace) -> int:
    from .engine import FileContext, _parse, _relativize, collect_files
    from .flow import FlowOptions, build_program
    from .flow.audit import audit_contracts

    root = Path(args.root) if args.root else Path.cwd()
    config = LintConfig()
    contexts: List[FileContext] = []
    try:
        files = collect_files(args.paths, root=root)
    except FileNotFoundError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2
    for path in files:
        try:
            source, tree = _parse(path)
        except SyntaxError:
            continue
        contexts.append(
            FileContext(
                path=path,
                rel_path=_relativize(path, root),
                source=source,
                tree=tree,
                config=config,
            )
        )
    options = FlowOptions(jobs=args.jobs, cache_dir=args.cache_dir)
    index = build_program(contexts, options)
    audit = audit_contracts(index, options.config)
    _emit(audit.render() + "\n", args.output)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    raw_args = list(sys.argv[1:] if argv is None else argv)
    audit_mode = bool(raw_args) and raw_args[0] == "audit-contracts"
    if audit_mode:
        raw_args = raw_args[1:]
    parser = _build_parser()
    args = parser.parse_args(raw_args)
    if args.list_rules:
        for rule_id, summary in rule_catalogue().items():
            print(f"{rule_id}  {summary}")
        return 0
    if audit_mode:
        return _run_audit(args)

    config = LintConfig(select=args.select, ignore=args.ignore)
    root = Path(args.root) if args.root else None
    flow_options = None
    if args.flow:
        from .flow import FlowOptions

        flow_options = FlowOptions(jobs=args.jobs, cache_dir=args.cache_dir)
    resource_options = None
    if args.resources:
        from .resources import ResourceOptions

        resource_options = ResourceOptions(
            jobs=args.jobs, cache_dir=args.cache_dir
        )
    concurrency_options = None
    if args.concurrency:
        from .concurrency import ConcurrencyOptions

        concurrency_options = ConcurrencyOptions(
            jobs=args.jobs, cache_dir=args.cache_dir
        )
    if args.fix:
        from .fix import fix_paths

        try:
            fixed = fix_paths(args.paths, config=config, root=root)
        except FileNotFoundError as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return 2
        for rel, count in sorted(fixed.items()):
            print(f"fixed {count} finding(s) in {rel}", file=sys.stderr)
    try:
        findings: List[Finding] = lint_paths(
            args.paths,
            config=config,
            root=root,
            flow=flow_options,
            resources=resource_options,
            concurrency=concurrency_options,
        )
    except FileNotFoundError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    if args.baseline and args.write_baseline:
        from .baseline import write_baseline

        write_baseline(findings, Path(args.baseline))
        print(
            f"wrote {len(findings)} finding(s) to baseline {args.baseline}",
            file=sys.stderr,
        )
        return 0
    if args.write_baseline:
        print("repro-lint: --write-baseline requires --baseline", file=sys.stderr)
        return 2
    if args.baseline:
        from .baseline import apply_baseline

        try:
            findings, suppressed, stale = apply_baseline(findings, Path(args.baseline))
        except (OSError, ValueError) as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return 2
        if suppressed:
            print(f"{suppressed} finding(s) matched the baseline", file=sys.stderr)
        for key in stale:
            print(f"stale baseline entry (fixed since recorded): {key}", file=sys.stderr)

    if args.format == "sarif":
        from .sarif import render_sarif

        _emit(render_sarif(findings), args.output)
    else:
        lines = [_render(f, args.format) for f in findings]
        _emit("".join(line + "\n" for line in lines), args.output)
    if findings:
        counts: dict = {}
        for f in findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        summary = ", ".join(f"{k}: {v}" for k, v in sorted(counts.items()))
        print(f"\n{len(findings)} finding(s) ({summary})", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
