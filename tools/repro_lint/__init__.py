"""repro-lint — domain-aware static analysis for the repro codebase.

An AST-based analyzer with rules tuned to the numerical invariants of this
repository (see docs/STATIC_ANALYSIS.md for the catalogue):

=======  ==============================================================
RL001    float ``==`` / ``!=`` comparisons outside tolerance helpers
RL002    convolution / FFT calls outside the blessed kernel modules
RL003    global-state RNG instead of an explicit ``np.random.Generator``
RL004    ``Distribution`` constructor fields invisible to the cache
         fingerprint (silent ``SolverCache`` aliasing)
RL005    wall-clock reads inside the deterministic solver core
RL006    bare ``except:`` / ``except Exception: pass``
RL007    mutable default arguments
RL008    ``math.*`` scalar transcendentals applied to the array argument
         of a vectorized hot-path method
=======  ==============================================================

Run as ``python -m repro_lint PATH [PATH ...]`` or via the ``repro-lint``
console script.  Findings can be silenced per line with
``# repro-lint: disable=RL00x`` (or ``disable`` for all rules) and for the
following line with ``# repro-lint: disable-next-line=RL00x``.
"""

from .engine import Finding, LintConfig, lint_paths
from .registry import ALL_RULES, rule_catalogue

__version__ = "1.0.0"

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintConfig",
    "lint_paths",
    "rule_catalogue",
]
