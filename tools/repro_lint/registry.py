"""Rule registry: stable ids, descriptions, and dispatch tables."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence

from .engine import FileContext, Finding
from .project import rl004_fingerprint_completeness
from .rules import (
    rl001_float_equality,
    rl002_convolution_outside_kernel,
    rl003_global_rng,
    rl005_wall_clock,
    rl006_silent_except,
    rl007_mutable_default,
    rl008_math_in_hot_path,
    rl009_runtime_assert,
)

__all__ = [
    "FILE_RULES",
    "PROJECT_RULES",
    "FLOW_RULES",
    "RESOURCE_RULES",
    "CONCURRENCY_RULES",
    "ALL_RULES",
    "rule_catalogue",
]

FileRule = Callable[[FileContext], Iterable[Finding]]
ProjectRule = Callable[[Sequence[FileContext]], Iterable[Finding]]

FILE_RULES: Dict[str, FileRule] = {
    "RL001": rl001_float_equality,
    "RL002": rl002_convolution_outside_kernel,
    "RL003": rl003_global_rng,
    "RL005": rl005_wall_clock,
    "RL006": rl006_silent_except,
    "RL007": rl007_mutable_default,
    "RL008": rl008_math_in_hot_path,
    "RL009": rl009_runtime_assert,
}

PROJECT_RULES: Dict[str, ProjectRule] = {
    "RL004": rl004_fingerprint_completeness,
}

#: whole-program rules implemented by :mod:`repro_lint.flow` — they need the
#: cross-module :class:`~repro_lint.flow.program.ProgramIndex`, so they run
#: through :func:`repro_lint.flow.run_flow_rules` (opt-in via ``--flow``)
#: rather than the per-file dispatch tables above.  Registered here so rule
#: selection (``--select``/``--ignore``), suppression comments and the
#: catalogue treat them like any other rule.
FLOW_RULES: Dict[str, str] = {
    "RL010": "Nondeterminism (RNG/clock/entropy/iteration order) reaches a "
    "cache key, checkpoint, trace or fork_map payload.",
    "RL011": "fork_map payload captures module-global mutable state or an "
    "unpicklable resource.",
    "RL012": "fork_map payload mutates state shared with the parent process "
    "(captured objects, self, module globals).",
    "RL013": "fork_map payload can statically reach another fork_map call "
    "(nested fan-out raises at runtime).",
}

#: resource- and numeric-safety rules implemented by
#: :mod:`repro_lint.resources` — like the flow rules they need the
#: whole-program view, so they run through
#: :func:`repro_lint.resources.run_resource_rules` (opt-in via
#: ``--resources``) rather than the per-file dispatch tables.
RESOURCE_RULES: Dict[str, str] = {
    "RL014": "A live view into a reusable FFT/shared-memory arena escapes "
    "(returned, stored, or read after the arena was rewritten), or arena "
    "state is mutated outside the workspace lock.",
    "RL015": "Named shared-memory segment lifecycle violation: publish "
    "without close/unlink on all paths, use-after-unlink, or a segment "
    "created before it is registered for cleanup.",
    "RL016": "A float32-typed value flows into float64-contracted "
    "CDF/difference/mean algebra or a cache-fingerprint site.",
    "RL017": "A numba jit kernel and its NumPy twin drifted apart "
    "(signature, dtype promotion, gating, export, or test coverage).",
    "RL018": "Gossip/rebalancing/arrival options or FN/duplicate fault "
    "channels are fed into an engine='vector' simulator that rejects them "
    "at runtime.",
    "RL019": "A workspace LRU cache key omits an argument (dtype) that "
    "changes the cached arena's representation.",
}

#: concurrency-safety rules implemented by :mod:`repro_lint.concurrency` —
#: lock regions come from a dedicated AST pass and callee resolution
#: reuses the flow program index, so they run through
#: :func:`repro_lint.concurrency.run_concurrency_rules` (opt-in via
#: ``--concurrency``) rather than the per-file dispatch tables.
CONCURRENCY_RULES: Dict[str, str] = {
    "RL020": "Shared state (instance attribute or module global) is mutated "
    "both from a thread entry's call graph and from the main path without "
    "one common lock or queue mediation.",
    "RL021": "Lock-order cycle across the interprocedural acquisition graph "
    "(two threads traversing it in opposite orders deadlock), or a "
    "non-reentrant lock re-acquired while held.",
    "RL022": "Blocking call (sleep, subprocess, queue get/put, join, "
    "untimed wait, fork_map fan-out) while holding a lock, directly or "
    "through the call graph.",
    "RL023": "Fork-after-thread or fork-under-lock hazard: the child "
    "inherits locks with no owner thread and deadlocks on first acquire.",
    "RL024": "Thread lifecycle hygiene: unnamed/non-daemon threads in the "
    "distributed engine, non-daemon threads never joined, untimed joins in "
    "shutdown paths, timed joins whose outcome is never probed.",
    "RL025": "Event/Condition misuse: untimed Event.wait() in an unbounded "
    "loop, or Condition.wait() outside a while-predicate re-check loop "
    "(missed/spurious wakeups).",
}

ALL_RULES: List[str] = sorted(
    [*FILE_RULES, *PROJECT_RULES, *FLOW_RULES, *RESOURCE_RULES, *CONCURRENCY_RULES]
)


def rule_catalogue() -> Dict[str, str]:
    """``{rule id: one-line summary}`` for ``--list-rules``."""
    out: Dict[str, str] = {}
    for rule_id, fn in {**FILE_RULES, **PROJECT_RULES}.items():
        doc = (fn.__doc__ or "").strip().splitlines()
        out[rule_id] = doc[0] if doc else ""
    out.update(FLOW_RULES)
    out.update(RESOURCE_RULES)
    out.update(CONCURRENCY_RULES)
    return dict(sorted(out.items()))
