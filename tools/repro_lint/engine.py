"""Core machinery of repro-lint: findings, suppressions, and the driver.

The engine is rule-agnostic.  Each rule is a callable ``rule(ctx) ->
Iterable[Finding]`` operating on a parsed :class:`FileContext`; project-wide
rules (which need every file at once, e.g. the fingerprint-completeness
check RL004) implement ``project_rule(files) -> Iterable[Finding]`` instead.
Suppression comments are honoured centrally, so individual rules never need
to know about them.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "FileContext",
    "LintConfig",
    "collect_files",
    "lint_paths",
]

#: matches one suppression comment; group 1 is "-next-line" or empty, group 2
#: the optional comma-separated rule list
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable(-next-line)?\s*(?:=\s*([A-Za-z0-9_,\s]+))?"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


@dataclass
class LintConfig:
    """Tuned knobs of the rule set (paths are repo-relative, POSIX-style).

    The defaults encode this repository's layout; the test-suite overrides
    them to lint synthetic snippets in isolation.
    """

    #: modules allowed to call convolution/FFT primitives directly (RL002):
    #: the spectral kernel, the grid-mass algebra, the transform solver,
    #: the preplanned FFT workspaces and the compiled inner loops
    blessed_convolution_modules: Tuple[str, ...] = (
        "src/repro/core/convolution.py",
        "src/repro/distributions/spectral.py",
        "src/repro/distributions/grid.py",
        "src/repro/distributions/workspace.py",
        "src/repro/distributions/jit_kernels.py",
    )
    #: directories whose modules must stay wall-clock free (RL005)
    deterministic_zones: Tuple[str, ...] = (
        "src/repro/core/",
        "src/repro/distributions/",
    )
    #: directories whose files count as test code (RL001 allows exact
    #: equality inside ``assert`` statements there — boundary/degenerate
    #: values are legitimate test oracles)
    test_dirs: Tuple[str, ...] = ("tests/",)
    #: shipped-package directories where ``assert`` statements are banned
    #: (RL009): ``python -O`` strips them, so invariants must go through
    #: ``repro._contracts`` or plain ``raise``
    no_assert_zones: Tuple[str, ...] = ("src/repro/",)
    #: directories scanned for Distribution subclasses by RL004 (cache
    #: aliasing only matters for shipped laws, not for test doubles)
    fingerprint_zones: Tuple[str, ...] = ("src/",)
    #: modules whose vectorized methods are array hot paths (RL008)
    hot_path_zones: Tuple[str, ...] = ("src/repro/distributions/",)
    #: method names within hot-path zones that receive array arguments
    hot_path_methods: Tuple[str, ...] = (
        "pdf",
        "cdf",
        "sf",
        "hazard",
        "quantile",
        "mass_on",
    )
    #: rule selection (None = all registered rules)
    select: Optional[Set[str]] = None
    ignore: Set[str] = field(default_factory=set)

    def enabled(self, rule: str) -> bool:
        if rule in self.ignore:
            return False
        return self.select is None or rule in self.select


class _Suppressions:
    """Per-file map of line -> suppressed rule ids (empty set = all)."""

    def __init__(self, source: str):
        self._lines: Dict[int, Optional[Set[str]]] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            m = _SUPPRESS_RE.search(text)
            if not m:
                continue
            target = lineno + 1 if m.group(1) else lineno
            rules: Optional[Set[str]] = None
            if m.group(2):
                rules = {r.strip().upper() for r in m.group(2).split(",") if r.strip()}
            existing = self._lines.get(target, set())
            if rules is None or existing is None:
                self._lines[target] = None  # blanket disable wins
            else:
                self._lines[target] = set(existing) | rules

    def suppressed(self, finding: Finding) -> bool:
        if finding.line not in self._lines:
            return False
        rules = self._lines[finding.line]
        return rules is None or finding.rule in rules


@dataclass
class FileContext:
    """Everything a per-file rule needs about one module."""

    path: Path
    rel_path: str  # repo-relative POSIX path used for zone matching
    source: str
    tree: ast.Module
    config: LintConfig

    @property
    def is_test_file(self) -> bool:
        return any(self.rel_path.startswith(d) for d in self.config.test_dirs)

    @property
    def is_blessed_convolution(self) -> bool:
        return self.rel_path in self.config.blessed_convolution_modules

    @property
    def in_deterministic_zone(self) -> bool:
        return any(self.rel_path.startswith(d) for d in self.config.deterministic_zones)

    @property
    def in_no_assert_zone(self) -> bool:
        return not self.is_test_file and any(
            self.rel_path.startswith(d) for d in self.config.no_assert_zones
        )

    @property
    def in_fingerprint_zone(self) -> bool:
        return any(self.rel_path.startswith(d) for d in self.config.fingerprint_zones)

    @property
    def in_hot_path_zone(self) -> bool:
        return any(self.rel_path.startswith(d) for d in self.config.hot_path_zones)


_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "node_modules"}


def collect_files(paths: Sequence[str], root: Optional[Path] = None) -> List[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    out: Set[Path] = set()
    base = root or Path.cwd()
    for p in paths:
        path = Path(p)
        if not path.is_absolute():
            path = base / path
        if path.is_file() and path.suffix == ".py":
            out.add(path)
        elif path.is_dir():
            for f in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in f.parts):
                    out.add(f)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {p}")
    return sorted(out)


def _relativize(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _parse(path: Path) -> Tuple[str, ast.Module]:
    source = path.read_text(encoding="utf-8")
    return source, ast.parse(source, filename=str(path))


def lint_paths(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    root: Optional[Path] = None,
    flow: Optional[object] = None,
    resources: Optional[object] = None,
    concurrency: Optional[object] = None,
) -> List[Finding]:
    """Lint files/directories and return suppression-filtered findings.

    ``root`` anchors the repo-relative paths the zone configuration matches
    against (defaults to the current working directory).  Passing a
    :class:`repro_lint.flow.FlowOptions` as ``flow`` additionally runs the
    whole-program rules (RL010–RL013) over the same file set; a
    :class:`repro_lint.resources.ResourceOptions` as ``resources`` runs
    the resource- and numeric-safety rules (RL014–RL019); a
    :class:`repro_lint.concurrency.ConcurrencyOptions` as ``concurrency``
    runs the concurrency-safety rules (RL020–RL025).  All go through the
    same suppression filter as everything else.
    """
    # imported here to avoid a cycle: rule modules import the engine types
    from .registry import FILE_RULES, PROJECT_RULES

    cfg = config or LintConfig()
    base = root or Path.cwd()
    contexts: List[FileContext] = []
    findings: List[Finding] = []
    for path in collect_files(paths, root=base):
        try:
            source, tree = _parse(path)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    rule="RL000",
                    path=_relativize(path, base),
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        contexts.append(
            FileContext(
                path=path,
                rel_path=_relativize(path, base),
                source=source,
                tree=tree,
                config=cfg,
            )
        )

    raw: List[Finding] = []
    for ctx in contexts:
        for rule_id, rule in FILE_RULES.items():
            if cfg.enabled(rule_id):
                raw.extend(rule(ctx))
    for rule_id, project_rule in PROJECT_RULES.items():
        if cfg.enabled(rule_id):
            raw.extend(project_rule(contexts))
    if flow is not None:
        from .flow import run_flow_rules

        raw.extend(run_flow_rules(contexts, cfg, flow))
    if resources is not None:
        from .resources import run_resource_rules

        raw.extend(run_resource_rules(contexts, cfg, resources))
    if concurrency is not None:
        from .concurrency import run_concurrency_rules

        raw.extend(run_concurrency_rules(contexts, cfg, concurrency))

    by_file: Dict[str, _Suppressions] = {
        ctx.rel_path: _Suppressions(ctx.source) for ctx in contexts
    }
    for f in raw:
        supp = by_file.get(f.path)
        if supp is None or not supp.suppressed(f):
            findings.append(f)
    return sorted(findings, key=Finding.sort_key)
