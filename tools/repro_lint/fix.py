"""Mechanical autofixes for ``repro-lint --fix``.

Only findings with one canonical, behavior-preserving rewrite are
eligible:

* **RL007** (mutable default argument) — the default becomes ``None``
  and an ``if param is None: param = <original>`` guard is inserted
  after the docstring, which is the fix the rule's message prescribes.
  Lambdas are left alone (there is no body to guard in).
* **RL008** (scalar ``math.*`` on a hot-path array argument) — the
  ``math.<fn>`` reference is rewritten to the ``np.<ufunc>`` spelling
  (``asin`` → ``arcsin`` etc.); ``import numpy as np`` is added when the
  module does not already bind ``np``.  ``erf``/``erfc``/``gamma``/
  ``lgamma`` have no plain NumPy ufunc and are skipped.

Fixes re-run the rules' own detectors, so a clean file stays untouched
and a second ``--fix`` pass is a no-op; suppression comments are
honoured exactly as when linting.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .engine import (
    Finding,
    LintConfig,
    _parse,
    _relativize,
    _Suppressions,
    collect_files,
)
from .imports import ImportTracker
from .rules import _MATH_TRANSCENDENTAL, _array_param_name, _is_mutable_default

__all__ = ["fix_paths", "fix_source"]

#: math.<name> -> np.<name> — identity unless NumPy spells it differently
_NP_NAMES: Dict[str, str] = {
    "asin": "arcsin",
    "acos": "arccos",
    "atan": "arctan",
    "atan2": "arctan2",
    "pow": "power",
}
#: transcendentals with no plain ``np.*`` ufunc (live in scipy.special)
_NO_NP_UFUNC = frozenset({"erf", "erfc", "gamma", "lgamma"})

#: one text edit: replace ``source[start:end]`` with ``text``
_Edit = Tuple[int, int, str]


def _line_offsets(source: str) -> List[int]:
    offsets = [0]
    for line in source.splitlines(keepends=True):
        offsets.append(offsets[-1] + len(line))
    return offsets


def _offset(offsets: List[int], line: int, col: int) -> int:
    return offsets[line - 1] + col


def _suppressed(supp: _Suppressions, rule: str, rel: str, line: int) -> bool:
    return supp.suppressed(Finding(rule=rule, path=rel, line=line, col=0, message=""))


def _fix_rl007(
    source: str,
    tree: ast.Module,
    rel: str,
    offsets: List[int],
    supp: _Suppressions,
) -> List[_Edit]:
    edits: List[_Edit] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        # pair every defaulted parameter with its default expression
        args = node.args
        positional = [*args.posonlyargs, *args.args]
        pairs: List[Tuple[str, ast.expr]] = []
        for arg, default in zip(positional[len(positional) - len(args.defaults):], args.defaults):
            pairs.append((arg.arg, default))
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None:
                pairs.append((arg.arg, default))

        guards: List[Tuple[str, str]] = []
        for param, default in pairs:
            if not _is_mutable_default(default):
                continue
            if _suppressed(supp, "RL007", rel, default.lineno):
                continue
            original = ast.get_source_segment(source, default)
            if original is None or "\n" in original:
                continue  # multi-line default: not mechanically safe
            start = _offset(offsets, default.lineno, default.col_offset)
            end = _offset(offsets, default.end_lineno, default.end_col_offset)
            edits.append((start, end, "None"))
            guards.append((param, original))

        if not guards:
            continue
        body = node.body
        insert_at = 0
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            insert_at = 1
        anchor = body[insert_at] if insert_at < len(body) else body[-1]
        indent = " " * anchor.col_offset
        text = "".join(
            f"{indent}if {param} is None:\n{indent}    {param} = {original}\n"
            for param, original in guards
        )
        pos = offsets[anchor.lineno - 1]
        edits.append((pos, pos, text))
    return edits


def _np_bound(tree: ast.Module) -> bool:
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if (alias.asname or alias.name) == "np":
                    return True
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if (alias.asname or alias.name) == "np":
                    return True
    return False


def _import_insertion_line(tree: ast.Module) -> int:
    """1-based line *before* which ``import numpy as np`` goes."""
    line = 1
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            line = (node.end_lineno or node.lineno) + 1
        elif (
            isinstance(node, ast.Expr)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
            and line == 1
        ):
            line = (node.end_lineno or node.lineno) + 1
    return line


def _fix_rl008(
    source: str,
    tree: ast.Module,
    rel: str,
    offsets: List[int],
    supp: _Suppressions,
    config: LintConfig,
) -> List[_Edit]:
    if not any(rel.startswith(zone) for zone in config.hot_path_zones):
        return []
    imports = ImportTracker(tree)
    edits: List[_Edit] = []
    needs_np = False
    for fn in ast.walk(tree):
        if not isinstance(fn, ast.FunctionDef) or fn.name not in config.hot_path_methods:
            continue
        param = _array_param_name(fn)
        if param is None:
            continue
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            qual = imports.qualify(node.func)
            if qual is None or not qual.startswith("math."):
                continue
            name = qual[len("math."):]
            if name not in _MATH_TRANSCENDENTAL or name in _NO_NP_UFUNC:
                continue
            touches_param = any(
                isinstance(sub, ast.Name) and sub.id == param
                for arg in node.args
                for sub in ast.walk(arg)
            )
            if not touches_param:
                continue
            if _suppressed(supp, "RL008", rel, node.lineno):
                continue
            func = node.func
            start = _offset(offsets, func.lineno, func.col_offset)
            end = _offset(offsets, func.end_lineno, func.end_col_offset)
            edits.append((start, end, f"np.{_NP_NAMES.get(name, name)}"))
            needs_np = True
    if needs_np and not _np_bound(tree):
        pos = offsets[_import_insertion_line(tree) - 1]
        edits.append((pos, pos, "import numpy as np\n"))
    return edits


def fix_source(source: str, rel: str, config: Optional[LintConfig] = None) -> Tuple[str, int]:
    """Return ``(fixed source, number of fixes applied)`` for one module."""
    cfg = config or LintConfig()
    tree = ast.parse(source)
    offsets = _line_offsets(source)
    supp = _Suppressions(source)
    edits: List[_Edit] = []
    if cfg.enabled("RL007"):
        edits.extend(_fix_rl007(source, tree, rel, offsets, supp))
    if cfg.enabled("RL008"):
        edits.extend(_fix_rl008(source, tree, rel, offsets, supp, cfg))
    if not edits:
        return source, 0
    # guard/import insertions ride along with their replacement edits and
    # do not count as separate fixes
    count = sum(1 for start, end, _text in edits if start != end)
    fixed = source
    for start, end, text in sorted(edits, key=lambda e: (e[0], e[1]), reverse=True):
        fixed = fixed[:start] + text + fixed[end:]
    return fixed, count


def fix_paths(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    root: Optional[Path] = None,
) -> Dict[str, int]:
    """Apply the autofixes in place; ``{rel_path: fix count}`` of changed
    files.  Files that do not parse are skipped (the subsequent lint run
    reports them as RL000)."""
    cfg = config or LintConfig()
    base = root or Path.cwd()
    fixed_counts: Dict[str, int] = {}
    for path in collect_files(paths, root=base):
        rel = _relativize(path, base)
        try:
            source, _tree = _parse(path)
        except SyntaxError:
            continue
        fixed, count = fix_source(source, rel, cfg)
        if count and fixed != source:
            path.write_text(fixed, encoding="utf-8")
            fixed_counts[rel] = count
    return fixed_counts
