"""RL019 — workspace-cache key completeness.

``cached_spectrum``-style LRU caches return frozen arena views keyed by
the caller's tuple.  Any argument that changes the *shape or dtype* of
the cached arena must appear in that key: a float32 and a float64
spectrum computed for the same logical input would otherwise collide on
one slot, handing one caller a view with the other's representation.

The check is deliberately shallow — only keys that are tuple literals
in the calling function (directly at the call site, or via a single
local assignment) are inspected; a key received as a parameter is the
caller's responsibility and is skipped.  A tuple satisfies the rule
when some element encodes a dtype: an attribute access ending in
``.dtype``/``.str``, any identifier mentioning ``dtype``, or a literal
dtype string.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence

from ..engine import FileContext, Finding
from ._common import call_name, finding, iter_functions
from .config import KeyedCacheSpec, ResourceConfig

__all__ = ["run_key_rule"]

_RULE = "RL019"

_DTYPE_STRINGS = {
    "float32", "float64", "f4", "f8", "<f4", "<f8",
    "complex64", "complex128", "single", "double",
}


def _encodes_dtype(elt: ast.expr) -> bool:
    for node in ast.walk(elt):
        if isinstance(node, ast.Attribute) and (
            node.attr in ("dtype", "str") or "dtype" in node.attr
        ):
            return True
        if isinstance(node, ast.Name) and "dtype" in node.id.lower():
            return True
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and node.value in _DTYPE_STRINGS
        ):
            return True
    return False


def _key_expr(call: ast.Call, spec: KeyedCacheSpec) -> Optional[ast.expr]:
    if len(call.args) > spec.key_arg:
        return call.args[spec.key_arg]
    for kw in call.keywords:
        if kw.arg == spec.key_kwarg:
            return kw.value
    return None


def _tuple_locals(fn: ast.FunctionDef) -> Dict[str, ast.Tuple]:
    """Locals assigned a tuple literal exactly once."""
    out: Dict[str, ast.Tuple] = {}
    seen: set = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if not isinstance(target, ast.Name):
                continue
            if target.id in seen:
                out.pop(target.id, None)
                continue
            seen.add(target.id)
            if isinstance(node.value, ast.Tuple):
                out[target.id] = node.value
    return out


def _check_function(
    ctx: FileContext, fn: ast.FunctionDef, cfg: ResourceConfig
) -> List[Finding]:
    findings: List[Finding] = []
    specs = {spec.method: spec for spec in cfg.keyed_caches}
    tuples: Optional[Dict[str, ast.Tuple]] = None
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        spec = specs.get(call_name(node))
        if spec is None:
            continue
        key = _key_expr(node, spec)
        if key is None:
            continue
        tup: Optional[ast.Tuple] = None
        if isinstance(key, ast.Tuple):
            tup = key
        elif isinstance(key, ast.Name):
            if tuples is None:
                tuples = _tuple_locals(fn)
            tup = tuples.get(key.id)
        if tup is None:
            continue  # key built elsewhere — the caller owns completeness
        if any(_encodes_dtype(elt) for elt in tup.elts):
            continue
        findings.append(
            finding(
                ctx,
                _RULE,
                node,
                f"{spec.method}() key omits the arena dtype; a float32 and "
                f"a float64 request for the same input collide on one cache "
                f"slot — add a dtype-encoding element (e.g. arr.dtype.str) "
                f"to the key tuple",
            )
        )
    return findings


def run_key_rule(
    contexts: Sequence[FileContext], cfg: ResourceConfig
) -> List[Finding]:
    findings: List[Finding] = []
    tokens = tuple(spec.method for spec in cfg.keyed_caches)
    for ctx in contexts:
        # textual gate: the file must call a keyed cache to be of interest
        if not any(t in ctx.source for t in tokens):
            continue
        for fn in iter_functions(ctx.tree):
            findings.extend(_check_function(ctx, fn, cfg))
    return findings
