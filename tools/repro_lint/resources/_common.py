"""Small AST helpers shared by the resource rules."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from ..engine import FileContext, Finding

__all__ = [
    "finding",
    "call_name",
    "last_component",
    "receiver_chain",
    "receiver_root",
    "iter_functions",
    "literal_exports",
]


def finding(
    ctx: FileContext, rule: str, node: ast.AST, message: str
) -> Finding:
    return Finding(
        rule=rule,
        path=ctx.rel_path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        message=message,
    )


def call_name(call: ast.Call) -> Optional[str]:
    """Final name component of a call's target (``ws._arena_view`` ->
    ``_arena_view``; ``publish_arrays`` -> itself)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def last_component(name: Optional[str]) -> Optional[str]:
    """Final dotted component of a resolved callee (handles ``?.m``)."""
    if name is None:
        return None
    return name.rpartition(".")[2]


def receiver_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """Dotted name chain of an expression (``self._shm`` ->
    ``("self", "_shm")``), or ``None`` for non-name expressions."""
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.append(cur.id)
    return tuple(reversed(parts))


def receiver_root(call: ast.Call) -> Optional[str]:
    """Root name of an attribute call's receiver (``ws.rfft(x)`` -> ``ws``)."""
    if not isinstance(call.func, ast.Attribute):
        return None
    chain = receiver_chain(call.func.value)
    return chain[0] if chain else None


def iter_functions(
    tree: ast.AST,
) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node  # type: ignore[misc]


def literal_exports(tree: ast.Module) -> Optional[List[str]]:
    """Names in a literal module-level ``__all__`` (``None`` = absent)."""
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
        ):
            continue
        if isinstance(node.value, (ast.List, ast.Tuple)):
            out = []
            for elt in node.value.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    out.append(elt.value)
            return out
    return None
