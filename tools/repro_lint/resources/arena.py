"""RL014 — arena-view escape.

The FFT workspaces hand out *views into reusable arenas*: the buffer
behind the view is rewritten by the next workspace call that touches the
same arena.  A view is therefore only safe while it is (a) local, (b)
consumed before any further arena-touching call, and (c) handled inside
the owner module, whose lock discipline the rest of the codebase cannot
see.  Four escape shapes are flagged:

1. **return-escape** — a function outside the owner modules returns a
   live view (tracked interprocedurally through the call graph);
2. **store-escape** — a view is stored into object/module state, where
   it outlives the frame that knows when the arena is rewritten;
3. **live-across-reuse** — a view is read after a second arena-touching
   call on the same workspace already rewrote the buffer;
4. **unsynchronized state write** — arena buffers or their ``fill``
   invariant are mutated outside the workspace lock inside an owner
   module (two threads then zero each other's payload mid-transform).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..engine import FileContext, Finding
from ..flow.program import ProgramIndex
from ._common import (
    call_name,
    finding,
    iter_functions,
    last_component,
    receiver_root,
)
from .config import ResourceConfig

__all__ = ["run_arena_rule"]

_RULE = "RL014"


def _return_escapes(
    index: Optional[ProgramIndex], cfg: ResourceConfig
) -> List[Tuple[str, str, int]]:
    """``(rel_path, qualname, line)`` of view-returning functions outside
    the owner modules (fixpoint over functions returning producer calls)."""
    if index is None:
        return []
    producers: Set[str] = {
        qual
        for qual in index.functions
        if last_component(qual) in cfg.arena_view_methods
    }
    changed = True
    while changed:
        changed = False
        for qual, fn in index.functions.items():
            if qual in producers:
                continue
            for atom in fn.returns:
                if atom[0] != "call" or atom[1] >= len(fn.callsites):
                    continue
                site = fn.callsites[atom[1]]
                callee_last = last_component(site.callee)
                if callee_last in cfg.arena_view_methods:
                    producers.add(qual)
                    changed = True
                    break
                callee = index.callee_function(site.callee)
                if callee is not None and callee.qualname in producers:
                    producers.add(qual)
                    changed = True
                    break
    out = []
    for qual in sorted(producers):
        if last_component(qual) in cfg.arena_view_methods:
            continue  # the producer itself is the owner-module primitive
        rel = index.file_of.get(qual)
        if rel is None or rel in cfg.arena_owner_modules:
            continue
        out.append((rel, qual, index.functions[qual].line))
    return out


def _view_bindings(
    fn: ast.FunctionDef, cfg: ResourceConfig
) -> Dict[str, Tuple[int, Optional[str]]]:
    """Locals bound to a fresh arena view: name -> (line, receiver root)."""
    views: Dict[str, Tuple[int, Optional[str]]] = {}
    for node in ast.walk(fn):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        if call_name(node.value) not in cfg.arena_view_methods:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                views[target.id] = (node.lineno, receiver_root(node.value))
    return views


def _check_function_body(
    ctx: FileContext, fn: ast.FunctionDef, cfg: ResourceConfig
) -> List[Finding]:
    findings: List[Finding] = []
    views = _view_bindings(fn, cfg)

    # store-escape: a view (or a fresh producer call) assigned to
    # attribute/subscript state
    for node in ast.walk(fn):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        is_view = (
            isinstance(value, ast.Call)
            and call_name(value) in cfg.arena_view_methods
        ) or (
            isinstance(value, ast.Name)
            and value.id in views
            and node.lineno > views[value.id][0]
        )
        if not is_view:
            continue
        for target in node.targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                findings.append(
                    finding(
                        ctx,
                        _RULE,
                        node,
                        "arena view stored into object/module state; the "
                        "buffer behind it is rewritten by the next workspace "
                        "call — copy the payload instead of keeping the view",
                    )
                )

    # live-across-reuse: a view read after a later arena-touching call on
    # the same workspace receiver
    if views:
        reuse_calls: List[Tuple[int, Optional[str]]] = []
        for node in ast.walk(fn):
            if isinstance(node, ast.Call) and (
                call_name(node) in cfg.arena_reuse_methods
            ):
                reuse_calls.append((node.lineno, receiver_root(node)))
        for name, (bind_line, recv) in views.items():
            barrier: Optional[int] = None
            for line, r in reuse_calls:
                if line > bind_line and (recv is None or r is None or r == recv):
                    if barrier is None or line < barrier:
                        barrier = line
            if barrier is None:
                continue
            for node in ast.walk(fn):
                if (
                    isinstance(node, ast.Name)
                    and node.id == name
                    and isinstance(node.ctx, ast.Load)
                    and node.lineno > barrier
                ):
                    findings.append(
                        finding(
                            ctx,
                            _RULE,
                            node,
                            f"arena view {name!r} (bound at line {bind_line}) "
                            f"is read after the workspace call at line "
                            f"{barrier} reused the arena; consume or copy the "
                            f"view before transforming again",
                        )
                    )
                    break
    return findings


def _locked_node_ids(fn: ast.FunctionDef, cfg: ResourceConfig) -> Set[int]:
    locked: Set[int] = set()
    for node in ast.walk(fn):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        guards_lock = any(
            isinstance(sub, ast.Attribute) and sub.attr in cfg.arena_lock_attrs
            for item in node.items
            for sub in ast.walk(item.context_expr)
        )
        if not guards_lock:
            continue
        for stmt in node.body:
            for sub in ast.walk(stmt):
                locked.add(id(sub))
    return locked


def _check_owner_locking(
    ctx: FileContext, cfg: ResourceConfig
) -> List[Finding]:
    """Sub-check 4, owner modules only: arena buffers / ``fill`` written
    outside a ``with <lock>`` block (constructors excepted — the arena is
    not shared before ``__init__`` returns)."""
    findings: List[Finding] = []
    for fn in iter_functions(ctx.tree):
        if fn.name in ("__init__", "__new__"):
            continue
        locked = _locked_node_ids(fn, cfg)
        for node in ast.walk(fn):
            if not isinstance(node, (ast.Assign, ast.AugAssign)):
                continue
            if id(node) in locked:
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                hit = None
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr in cfg.arena_state_attrs
                ):
                    hit = f"arena invariant {target.attr!r}"
                elif isinstance(target, ast.Subscript) and any(
                    isinstance(sub, ast.Attribute)
                    and sub.attr in cfg.arena_buffer_attrs
                    for sub in ast.walk(target.value)
                ):
                    hit = "arena buffer"
                if hit:
                    findings.append(
                        finding(
                            ctx,
                            _RULE,
                            node,
                            f"{hit} written outside the workspace lock; a "
                            f"concurrent caller sharing the arena can zero "
                            f"this thread's payload mid-transform — widen "
                            f"the locked region to cover the write",
                        )
                    )
    return findings


def run_arena_rule(
    contexts: Sequence[FileContext],
    index: Optional[ProgramIndex],
    cfg: ResourceConfig,
) -> List[Finding]:
    findings: List[Finding] = []
    test_paths = {c.rel_path for c in contexts if c.is_test_file}
    for rel, qual, line in _return_escapes(index, cfg):
        if rel in test_paths:
            continue
        findings.append(
            Finding(
                rule=_RULE,
                path=rel,
                line=line,
                col=0,
                message=(
                    f"{qual} returns a live arena view past the kernel "
                    f"boundary; the next workspace call rewrites the buffer "
                    f"under the caller — return a copy, or keep the "
                    f"consumer inside the owner module"
                ),
            )
        )
    view_tokens = (*cfg.arena_view_methods, *cfg.arena_reuse_methods)
    for ctx in contexts:
        if ctx.is_test_file:
            continue
        # textual gate: only files touching an arena view producer (or the
        # owner module itself) can bind, store, or hold a live view
        if ctx.rel_path not in cfg.arena_owner_modules and not any(
            t in ctx.source for t in view_tokens
        ):
            continue
        for fn in iter_functions(ctx.tree):
            findings.extend(_check_function_body(ctx, fn, cfg))
        if ctx.rel_path in cfg.arena_owner_modules:
            findings.extend(_check_owner_locking(ctx, cfg))
    return findings
