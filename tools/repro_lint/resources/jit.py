"""RL017 — jit-twin parity.

Every numba kernel ships with a NumPy twin (``_<name>_py``) that *is*
the backend when numba is absent — so the pair must not drift.  The
check is structural, the way ``audit-contracts`` cross-references
``repro._contracts``: for each twin body the public dispatcher must
exist, bind the same positional parameters (plus at most the declared
dispatch flags), reference the twin under a ``HAVE_NUMBA`` gate, agree
with it on hard-coded dtype tokens, be exported, and be referenced by at
least one test — all decidable with or without numba installed, which
is what lets the no-numba CI leg assert parity too.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence, Set

from ..engine import FileContext, Finding
from ..flow.program import ProgramIndex
from ._common import finding, literal_exports
from .config import ResourceConfig

__all__ = ["run_jit_rule"]

_RULE = "RL017"
_DTYPE_TOKENS = ("float32", "float64", "complex64", "complex128")


def _dtype_tokens(fn: ast.FunctionDef) -> Set[str]:
    tokens: Set[str] = set()
    for node in ast.walk(fn):
        text: Optional[str] = None
        if isinstance(node, ast.Name):
            text = node.id
        elif isinstance(node, ast.Attribute):
            text = node.attr
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            text = node.value
        if text in _DTYPE_TOKENS:
            tokens.add(text)
    return tokens


def _positional(fn: ast.FunctionDef) -> List[str]:
    return [a.arg for a in [*fn.args.posonlyargs, *fn.args.args]]


def _tested_names(index: Optional[ProgramIndex]) -> Set[str]:
    names: Set[str] = set()
    if index is None:
        return names
    for f in index.files.values():
        names.update(f.referenced_idents)  # populated for test files only
    return names


def run_jit_rule(
    contexts: Sequence[FileContext],
    index: Optional[ProgramIndex],
    cfg: ResourceConfig,
) -> List[Finding]:
    findings: List[Finding] = []
    tested = _tested_names(index)
    pre, suf = cfg.jit_twin_prefix, cfg.jit_twin_suffix
    for ctx in contexts:
        if ctx.rel_path not in cfg.jit_modules:
            continue
        module_fns = {
            node.name: node
            for node in ctx.tree.body
            if isinstance(node, ast.FunctionDef)
        }
        exports = literal_exports(ctx.tree)
        bodies = {
            name[len(pre) : len(name) - len(suf)]: fn
            for name, fn in module_fns.items()
            if name.startswith(pre)
            and name.endswith(suf)
            and len(name) > len(pre) + len(suf)
        }

        for public_name, body_fn in sorted(bodies.items()):
            pub = module_fns.get(public_name)
            if pub is None:
                findings.append(
                    finding(
                        ctx,
                        _RULE,
                        body_fn,
                        f"NumPy twin {body_fn.name} has no public dispatcher "
                        f"{public_name}(); the kernel is unreachable when "
                        f"numba is the only caller",
                    )
                )
                continue
            body_pos = _positional(body_fn)
            pub_pos = _positional(pub)
            extras = pub_pos[len(body_pos) :] + [
                a.arg for a in pub.args.kwonlyargs
            ]
            if pub_pos[: len(body_pos)] != body_pos:
                findings.append(
                    finding(
                        ctx,
                        _RULE,
                        pub,
                        f"signature drift: {public_name}({', '.join(pub_pos)}) "
                        f"no longer matches its twin {body_fn.name}"
                        f"({', '.join(body_pos)}); the backends now bind "
                        f"arguments differently",
                    )
                )
            elif any(e not in cfg.jit_dispatch_params for e in extras):
                bad = [e for e in extras if e not in cfg.jit_dispatch_params]
                findings.append(
                    finding(
                        ctx,
                        _RULE,
                        pub,
                        f"{public_name}() takes parameter(s) "
                        f"{', '.join(bad)} its twin {body_fn.name} does not; "
                        f"only dispatch flags "
                        f"({', '.join(cfg.jit_dispatch_params)}) may differ",
                    )
                )
            pub_names = {
                n.id for n in ast.walk(pub) if isinstance(n, ast.Name)
            }
            if body_fn.name not in pub_names:
                findings.append(
                    finding(
                        ctx,
                        _RULE,
                        pub,
                        f"{public_name}() never references its NumPy twin "
                        f"{body_fn.name}; without numba the kernel has no "
                        f"backend",
                    )
                )
            elif not any(g in pub_names for g in cfg.jit_gate_names):
                findings.append(
                    finding(
                        ctx,
                        _RULE,
                        pub,
                        f"{public_name}() dispatches without consulting "
                        f"{'/'.join(cfg.jit_gate_names)}; it will call into "
                        f"numba machinery even where numba is absent",
                    )
                )
            body_tokens = _dtype_tokens(body_fn)
            pub_tokens = _dtype_tokens(pub)
            if body_tokens != pub_tokens:
                findings.append(
                    finding(
                        ctx,
                        _RULE,
                        pub,
                        f"dtype promotion divergence between {public_name}() "
                        f"and {body_fn.name}: "
                        f"{sorted(pub_tokens) or 'none'} vs "
                        f"{sorted(body_tokens) or 'none'}; the backends no "
                        f"longer promote identically",
                    )
                )
            if exports is not None and public_name not in exports:
                findings.append(
                    finding(
                        ctx,
                        _RULE,
                        pub,
                        f"jit kernel {public_name}() is missing from "
                        f"__all__; twin pairs are public API",
                    )
                )
            # only meaningful when the lint scope includes test files at
            # all (tested is the union of test-file identifier references)
            if tested and public_name not in tested:
                findings.append(
                    finding(
                        ctx,
                        _RULE,
                        pub,
                        f"jit kernel {public_name}() is referenced by no "
                        f"test; twin parity is unverified",
                    )
                )

        # reverse direction: a public numba-gated kernel without a twin
        for name, fn in sorted(module_fns.items()):
            if name.startswith("_"):
                continue
            if name in bodies:
                continue
            names_in = {n.id for n in ast.walk(fn) if isinstance(n, ast.Name)}
            if not any(g in names_in for g in cfg.jit_gate_names):
                continue
            twin = f"{pre}{name}{suf}"
            if twin not in module_fns:
                findings.append(
                    finding(
                        ctx,
                        _RULE,
                        fn,
                        f"numba-gated kernel {name}() has no NumPy twin "
                        f"{twin}(); it cannot run where numba is absent",
                    )
                )
    return findings
