"""Entry points of the resource- and numeric-safety pass (RL014–RL019).

Mirrors :mod:`repro_lint.flow.runner`: the engine hands over the parsed
file contexts, summaries are extracted once (through the same
content-addressed cache ``--flow`` uses, when configured) and each
enabled rule runs over the shared program index.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..engine import FileContext, Finding, LintConfig
from ..flow.cache import SummaryCache, extract_summaries
from ..flow.model import FileSummary
from ..flow.program import ProgramIndex
from .arena import run_arena_rule
from .config import ResourceOptions
from .dtype import run_dtype_rule
from .engines import run_engine_rule
from .jit import run_jit_rule
from .keys import run_key_rule
from .shm import run_shm_rule

__all__ = ["RESOURCE_RULE_IDS", "run_resource_rules"]

RESOURCE_RULE_IDS = ("RL014", "RL015", "RL016", "RL017", "RL018", "RL019")


def run_resource_rules(
    contexts: Sequence[FileContext],
    config: Optional[LintConfig] = None,
    options: Optional[ResourceOptions] = None,
) -> List[Finding]:
    """Run RL014–RL019 over the given files.

    Returns *raw* findings — the engine applies suppression comments
    centrally, exactly as for the per-file and flow rules.
    """
    cfg = config or LintConfig()
    opts = options or ResourceOptions()
    wanted = [r for r in RESOURCE_RULE_IDS if cfg.enabled(r)]
    if not wanted:
        return []

    summaries: Sequence[FileSummary] = ()
    index: Optional[ProgramIndex] = None
    if any(r in wanted for r in ("RL014", "RL016", "RL017")):
        cache = SummaryCache(opts.cache_dir) if opts.cache_dir else None
        items = [
            (ctx.rel_path, ctx.source, ctx.is_test_file) for ctx in contexts
        ]
        summaries = extract_summaries(
            items, opts.flow_config, jobs=opts.jobs, cache=cache
        )
        index = ProgramIndex(summaries)

    non_test = [ctx for ctx in contexts if not ctx.is_test_file]
    findings: List[Finding] = []
    if "RL014" in wanted:
        findings.extend(run_arena_rule(contexts, index, opts.config))
    if "RL015" in wanted:
        findings.extend(run_shm_rule(non_test, opts.config))
    if "RL016" in wanted:
        findings.extend(run_dtype_rule(contexts, summaries, opts.config))
    if "RL017" in wanted:
        findings.extend(run_jit_rule(non_test, index, opts.config))
    if "RL018" in wanted:
        findings.extend(run_engine_rule(non_test, opts.config))
    if "RL019" in wanted:
        findings.extend(run_key_rule(non_test, opts.config))
    return findings
