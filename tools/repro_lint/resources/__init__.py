"""Resource- and numeric-safety pass (RL014–RL019).

Companion to :mod:`repro_lint.flow`: where the flow layer tracks
*determinism* (seeds, ordering, fork_map hygiene), this package tracks
*resources and numerics* — arena-view aliasing into the reusable FFT
workspaces, named shared-memory lifecycle, float32 contamination of
float64-contracted algebra, numba/NumPy twin parity, engine capability
mismatches and workspace-cache key completeness.
"""

from .config import KeyedCacheSpec, ResourceConfig, ResourceOptions
from .runner import RESOURCE_RULE_IDS, run_resource_rules

__all__ = [
    "KeyedCacheSpec",
    "RESOURCE_RULE_IDS",
    "ResourceConfig",
    "ResourceOptions",
    "run_resource_rules",
]
