"""Configuration of the resource- and numeric-safety pass (RL014–RL019).

Like :mod:`repro_lint.flow.config`, everything here is data: the test
suite lints synthetic projects with the production model, and the
production tree can be analyzed with a tightened one.  Names follow the
same resolution conventions as the flow layer (project qualnames rooted
at the package, third-party ones at their import root); method names
(``arena_view_methods`` etc.) match on the final attribute, because
receivers are resolved best-effort only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..flow.config import FlowConfig, SinkSpec

__all__ = ["KeyedCacheSpec", "ResourceConfig", "ResourceOptions"]


@dataclass(frozen=True)
class KeyedCacheSpec:
    """One LRU-keyed workspace cache whose key must encode the dtype.

    ``method`` is the attribute name of the memoizing call
    (``ws.cached_spectrum(key, vec)``); ``key_arg``/``key_kwarg`` locate
    the key operand.  RL019 inspects tuple-literal keys only — opaque
    keys are the caller's contract and stay unflagged.
    """

    method: str
    key_arg: int = 0
    key_kwarg: str = "key"


def _default_float64_sinks() -> Tuple[SinkSpec, ...]:
    return (
        SinkSpec("numpy.cumsum", "float64-contracted CDF accumulation (cumsum)"),
        SinkSpec("numpy.diff", "float64-contracted difference algebra (diff)"),
        SinkSpec("numpy.mean", "float64-contracted mean reduction"),
        SinkSpec(
            "repro.core.cache.fingerprint",
            "cache-fingerprint site (float64 contract)",
        ),
        SinkSpec(
            "repro.core.cache.SolverCache.get_or_create",
            "SolverCache key (float64 contract)",
            arg_indices=(0,),
        ),
    )


@dataclass
class ResourceConfig:
    """Knobs of the six resource rules."""

    # -- RL014: arena-view escape --------------------------------------
    #: methods returning a live view into a reusable arena
    arena_view_methods: Tuple[str, ...] = ("_arena_view",)
    #: workspace calls that may rewrite the arena a view aliases
    arena_reuse_methods: Tuple[str, ...] = (
        "_arena_view",
        "rfft",
        "irfft_trunc",
        "cached_spectrum",
    )
    #: modules (repo-relative) allowed to hold and return raw arena views
    arena_owner_modules: Tuple[str, ...] = (
        "src/repro/distributions/workspace.py",
    )
    #: lock attributes guarding arena state in the owner modules
    arena_lock_attrs: Tuple[str, ...] = ("_lock",)
    #: attributes forming the arena's published invariant state
    arena_state_attrs: Tuple[str, ...] = ("fill",)
    #: attributes holding the reusable buffer itself
    arena_buffer_attrs: Tuple[str, ...] = ("buf",)

    # -- RL015: shared-memory lifecycle --------------------------------
    #: publishing call (matched on the final name component)
    shm_publish_names: Tuple[str, ...] = ("publish_arrays",)
    #: raw segment constructors (resolved qualnames)
    shm_create_names: Tuple[str, ...] = (
        "multiprocessing.shared_memory.SharedMemory",
    )
    #: module-level registries an owned segment must be recorded in
    shm_registries: Tuple[str, ...] = ("_OWNED_SEGMENTS",)
    #: methods releasing a handle's mapping / the segment
    shm_release_methods: Tuple[str, ...] = ("close", "unlink")
    #: methods destroying the named segment (use-after is an error)
    shm_unlink_methods: Tuple[str, ...] = ("unlink",)

    # -- RL016: dtype-flow contamination -------------------------------
    #: scalar/array casts producing float32 (resolved qualnames)
    float32_casts: Tuple[str, ...] = ("numpy.float32",)
    #: array factories whose ``dtype=float32`` makes the result float32
    dtype_factories: Tuple[str, ...] = (
        "numpy.zeros",
        "numpy.empty",
        "numpy.ones",
        "numpy.full",
        "numpy.asarray",
        "numpy.ascontiguousarray",
        "numpy.array",
        "numpy.arange",
        "numpy.linspace",
    )
    #: casts restoring the float64 contract
    float64_casts: Tuple[str, ...] = ("numpy.float64",)
    #: call targets contracted to receive float64 operands
    float64_sinks: Tuple[SinkSpec, ...] = field(
        default_factory=_default_float64_sinks
    )

    # -- RL017: jit-twin parity ----------------------------------------
    #: modules (repo-relative) holding numba kernels with NumPy twins
    jit_modules: Tuple[str, ...] = ("src/repro/distributions/jit_kernels.py",)
    #: a twin body is named ``{prefix}{public}{suffix}``
    jit_twin_prefix: str = "_"
    jit_twin_suffix: str = "_py"
    #: availability gates the public dispatcher must consult
    jit_gate_names: Tuple[str, ...] = ("HAVE_NUMBA",)
    #: extra dispatcher-only parameters the signature check permits
    jit_dispatch_params: Tuple[str, ...] = ("jit",)

    # -- RL018: engine-capability mismatch -----------------------------
    #: simulator constructors with an ``engine=`` capability switch
    simulator_names: Tuple[str, ...] = ("DCSSimulator",)
    engine_kwarg: str = "engine"
    #: engine values with a restricted feature surface
    restricted_engines: Tuple[str, ...] = ("vector",)
    #: constructor kwargs the restricted engines reject when non-None
    rejected_sim_kwargs: Tuple[str, ...] = ("info_period", "rebalancer")
    #: methods the restricted engines reject outright
    rejected_methods: Tuple[str, ...] = ("with_arrivals",)
    #: fault-plan constructors whose fields feed the capability check
    fault_plan_names: Tuple[str, ...] = ("FaultPlan",)
    #: plan fields the restricted engines reject when positive
    rejected_fault_fields: Tuple[str, ...] = (
        "group_duplicate",
        "fn_loss",
        "fn_duplicate",
        "fn_jitter",
    )
    #: plan factory classmethods known to set rejected fields
    rejected_plan_factories: Tuple[str, ...] = ("standard",)
    #: simulator entry points accepting a plan
    run_methods: Tuple[str, ...] = ("run", "run_batch")
    #: kwarg (and constructor kwarg) carrying the plan
    plan_kwargs: Tuple[str, ...] = ("faults",)

    # -- RL019: workspace-cache key completeness -----------------------
    keyed_caches: Tuple[KeyedCacheSpec, ...] = (
        KeyedCacheSpec("cached_spectrum"),
    )


@dataclass
class ResourceOptions:
    """Runtime switches for one resource-pass invocation."""

    enabled: bool = True
    #: worker processes for cold summary extraction (<=1 = serial)
    jobs: int = 1
    #: content-addressed summary cache shared with ``--flow``
    cache_dir: Optional[str] = None
    config: ResourceConfig = field(default_factory=ResourceConfig)
    #: extraction model (sources/sanitizers recorded in the summaries)
    flow_config: FlowConfig = field(default_factory=FlowConfig)
