"""RL015 — shared-memory segment lifecycle.

Named shared-memory segments outlive the process that forgets them: a
``publish_arrays`` handle that is neither context-managed, closed on all
paths, nor handed to the caller leaks ``/dev/shm`` space until reboot —
and a ``fork_map`` worker dying mid-lease leaves the parent's handle as
the only route to cleanup.  Three shapes are flagged:

1. **unmanaged publish** — the handle is dropped, or kept without a
   ``with`` block, a ``close()``/``unlink()`` on a cleanup path, or an
   ownership transfer (return / store);
2. **use-after-unlink** — a handle is read after the call that destroyed
   the segment (reassignment of the same name kills the tracking);
3. **unregistered create** — a raw ``SharedMemory(create=True)`` segment
   is not recorded in an owned-segment registry (or close-guarded by a
   ``try``) before statements that can raise run: an exception in the
   window leaks a segment no atexit sweep knows about.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..engine import FileContext, Finding
from ..imports import ImportTracker
from ._common import (
    call_name,
    finding,
    iter_functions,
    receiver_chain,
)
from .config import ResourceConfig

__all__ = ["run_shm_rule"]

_RULE = "RL015"


def _release_calls(
    fn: ast.FunctionDef, cfg: ResourceConfig
) -> List[Tuple[int, Tuple[str, ...], str, ast.Call]]:
    """``(line, receiver chain, method, node)`` of close/unlink calls."""
    out = []
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in cfg.shm_release_methods
        ):
            chain = receiver_chain(node.func.value)
            if chain:
                out.append((node.lineno, chain, node.func.attr, node))
    return out


def _cleanup_guarded_names(fn: ast.FunctionDef, cfg: ResourceConfig) -> Set[str]:
    """Local names released inside an except handler or finally block."""
    guarded: Set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Try):
            continue
        cleanup_stmts: List[ast.stmt] = list(node.finalbody)
        for handler in node.handlers:
            cleanup_stmts.extend(handler.body)
        for stmt in cleanup_stmts:
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in cfg.shm_release_methods
                ):
                    chain = receiver_chain(sub.func.value)
                    if chain:
                        guarded.add(chain[0])
    return guarded


def _check_publish(
    ctx: FileContext, fn: ast.FunctionDef, cfg: ResourceConfig
) -> List[Finding]:
    findings: List[Finding] = []
    publish_calls = [
        node
        for node in ast.walk(fn)
        if isinstance(node, ast.Call) and call_name(node) in cfg.shm_publish_names
    ]
    if not publish_calls:
        return findings

    managed_ids: Set[int] = set()  # call node ids that are with-managed
    returned_ids: Set[int] = set()
    assigned: Dict[int, str] = {}  # call node id -> bound local name
    with_names: Set[str] = set()
    returned_names: Set[str] = set()
    stored_names: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.context_expr, ast.Call):
                    managed_ids.add(id(item.context_expr))
                elif isinstance(item.context_expr, ast.Name):
                    with_names.add(item.context_expr.id)
        elif isinstance(node, ast.Return) and node.value is not None:
            if isinstance(node.value, ast.Call):
                returned_ids.add(id(node.value))
            elif isinstance(node.value, ast.Name):
                returned_names.add(node.value.id)
        elif isinstance(node, ast.Assign):
            if isinstance(node.value, ast.Call):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        assigned[id(node.value)] = target.id
            if isinstance(node.value, ast.Name):
                for target in node.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        stored_names.add(node.value.id)

    guarded = _cleanup_guarded_names(fn, cfg)
    for call in publish_calls:
        if id(call) in managed_ids or id(call) in returned_ids:
            continue
        name = assigned.get(id(call))
        if name is not None and (
            name in with_names
            or name in returned_names
            or name in stored_names
            or name in guarded
        ):
            continue
        findings.append(
            finding(
                ctx,
                _RULE,
                call,
                "shared-memory publish is neither context-managed, "
                "close-guarded on a cleanup path, nor handed to the caller; "
                "the segment leaks if this frame unwinds (or a fork_map "
                "worker holding the lease dies) — use 'with publish_arrays"
                "(...) as handle:' or close() in a finally",
            )
        )
    return findings


def _check_use_after_unlink(
    ctx: FileContext, fn: ast.FunctionDef, cfg: ResourceConfig
) -> List[Finding]:
    findings: List[Finding] = []
    unlinks = [
        (line, chain)
        for line, chain, method, _ in _release_calls(fn, cfg)
        if method in cfg.shm_unlink_methods
    ]
    if not unlinks:
        return findings
    for line, chain in unlinks:
        # a store to the exact chain after the unlink re-binds the name
        # and ends the tracked lifetime
        kill_line: Optional[int] = None
        for node in ast.walk(fn):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if receiver_chain(target) == chain and node.lineno > line:
                    if kill_line is None or node.lineno < kill_line:
                        kill_line = node.lineno
        for node in ast.walk(fn):
            use_chain = None
            if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
                use_chain = receiver_chain(node)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                use_chain = (node.id,)
            if use_chain != chain:
                continue
            if node.lineno <= line:
                continue
            if kill_line is not None and node.lineno >= kill_line:
                continue
            findings.append(
                finding(
                    ctx,
                    _RULE,
                    node,
                    f"{'.'.join(chain)} is used after unlink() destroyed "
                    f"the segment at line {line}; reads through the handle "
                    f"now race the kernel reclaiming the mapping",
                )
            )
            break
    return findings


def _registry_store_lines(fn: ast.FunctionDef, cfg: ResourceConfig) -> List[int]:
    lines = []
    for node in ast.walk(fn):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                chain = receiver_chain(target.value)
                if chain and chain[0] in cfg.shm_registries:
                    lines.append(node.lineno)
    return lines


def _try_guarded_ids(fn: ast.FunctionDef, cfg: ResourceConfig) -> Set[int]:
    """Node ids inside a ``try`` whose handlers/finally release a handle."""
    guarded: Set[int] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Try):
            continue
        cleanup: List[ast.stmt] = list(node.finalbody)
        for handler in node.handlers:
            cleanup.extend(handler.body)
        releases = any(
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr in cfg.shm_release_methods
            for stmt in cleanup
            for sub in ast.walk(stmt)
        )
        if not releases:
            continue
        guarded.add(id(node))  # the try statement itself is the guard
        for stmt in [*node.body, *cleanup, *node.orelse]:
            for sub in ast.walk(stmt):
                guarded.add(id(sub))
    return guarded


def _check_unregistered_create(
    ctx: FileContext,
    fn: ast.FunctionDef,
    cfg: ResourceConfig,
    imports: ImportTracker,
) -> List[Finding]:
    creates: List[Tuple[int, str, ast.Call]] = []
    for node in ast.walk(fn):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        call = node.value
        qual = imports.qualify(call.func)
        if qual not in cfg.shm_create_names:
            continue
        creating = any(
            kw.arg == "create"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in call.keywords
        )
        if not creating:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                creates.append((node.lineno, target.id, call))
    if not creates:
        return []

    findings: List[Finding] = []
    registry_lines = _registry_store_lines(fn, cfg)
    guarded_ids = _try_guarded_ids(fn, cfg)
    for create_line, seg_name, call in creates:
        reg_line = min(
            (ln for ln in registry_lines if ln > create_line), default=None
        )
        end = reg_line if reg_line is not None else 10**9
        for node in ast.walk(fn):
            if not isinstance(node, ast.stmt):
                continue
            if not (create_line < node.lineno < end):
                continue
            if id(node) in guarded_ids:
                continue
            risky = None
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Call):
                    continue
                # wrapping the segment (SharedArrays(..., segment, ...))
                # packages it for the registry; releasing it is cleanup
                wraps = any(
                    isinstance(a, ast.Name) and a.id == seg_name
                    for a in [*sub.args, *[kw.value for kw in sub.keywords]]
                )
                releases = (
                    isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in cfg.shm_release_methods
                )
                if not wraps and not releases:
                    risky = sub
                    break
            if risky is not None:
                findings.append(
                    finding(
                        ctx,
                        _RULE,
                        node,
                        f"shared segment {seg_name!r} (created at line "
                        f"{create_line}) is not registered for cleanup or "
                        f"close-guarded before this statement; an exception "
                        f"here leaks a segment the atexit sweep cannot see — "
                        f"register the handle first, then fill it under a "
                        f"try that closes on failure",
                    )
                )
                break
    return findings


def run_shm_rule(
    contexts: Sequence[FileContext], cfg: ResourceConfig
) -> List[Finding]:
    findings: List[Finding] = []
    create_tokens = tuple(
        name.rpartition(".")[2] for name in cfg.shm_create_names
    )
    for ctx in contexts:
        # cheap textual gate: most files never touch shared memory at all
        has_publish = any(n in ctx.source for n in cfg.shm_publish_names)
        has_unlink = any(m in ctx.source for m in cfg.shm_unlink_methods)
        has_create = any(t in ctx.source for t in create_tokens)
        if not (has_publish or has_unlink or has_create):
            continue
        imports = ImportTracker(ctx.tree) if has_create else None
        for fn in iter_functions(ctx.tree):
            if has_publish:
                findings.extend(_check_publish(ctx, fn, cfg))
            if has_unlink:
                findings.extend(_check_use_after_unlink(ctx, fn, cfg))
            if imports is not None:
                findings.extend(
                    _check_unregistered_create(ctx, fn, cfg, imports)
                )
    return findings
