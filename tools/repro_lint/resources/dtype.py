"""RL016 — dtype-flow contamination.

The compiled-kernel contract is *FFTs in float32, algebra and
fingerprints in float64*: a float32 value reaching CDF/difference/mean
algebra or a cache-fingerprint site quietly halves the precision of
everything downstream (and forks the cache on representation noise).
This rule reuses the RL010 taint engine with a float32 model: calls
producing float32 values become sources, float64 casts become
sanitizers, and the float64-contracted call targets become sinks — so
contamination is tracked through the call graph exactly like
nondeterminism is.

The extractor's cached summaries are dtype-agnostic; this pass works on
in-memory copies, marking call sites by joining the summary's
``(line, col)`` against a per-file AST scan, so the on-disk cache stays
shared with ``--flow``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..engine import FileContext, Finding
from ..flow.config import FlowConfig
from ..flow.model import FileSummary
from ..flow.program import ProgramIndex
from ..flow.taint import TaintAnalysis
from ..imports import ImportTracker
from .config import ResourceConfig

__all__ = ["run_dtype_rule"]

_F32_STRINGS = {"float32", "f4", "<f4", "single"}
_F64_STRINGS = {"float64", "f8", "<f8", "double", "float"}


def _dtype_class(
    node: Optional[ast.expr], imports: ImportTracker, cfg: ResourceConfig
) -> Optional[str]:
    """``"f32"``/``"f64"`` for a dtype-valued expression, else ``None``."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        if node.value in _F32_STRINGS:
            return "f32"
        if node.value in _F64_STRINGS:
            return "f64"
        return None
    qual = imports.qualify(node)
    if qual in cfg.float32_casts:
        return "f32"
    if qual in cfg.float64_casts or qual == "float":
        return "f64"
    return None


def _scan_dtype_calls(
    ctx: FileContext, cfg: ResourceConfig
) -> Tuple[Set[Tuple[int, int]], Set[Tuple[int, int]]]:
    """``(line, col)`` positions of float32-producing and float64-casting
    call expressions in one module."""
    imports = ImportTracker(ctx.tree)
    sources: Set[Tuple[int, int]] = set()
    sanitizers: Set[Tuple[int, int]] = set()
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        pos = (node.lineno, node.col_offset)
        qual = imports.qualify(node.func)
        if qual in cfg.float32_casts and (node.args or node.keywords):
            sources.add(pos)
            continue
        if qual in cfg.float64_casts and (node.args or node.keywords):
            sanitizers.add(pos)
            continue
        if isinstance(node.func, ast.Attribute) and node.func.attr == "astype":
            target = node.args[0] if node.args else None
            if target is None:
                for kw in node.keywords:
                    if kw.arg == "dtype":
                        target = kw.value
            cls = _dtype_class(target, imports, cfg)
            if cls == "f32":
                sources.add(pos)
            elif cls == "f64":
                sanitizers.add(pos)
            continue
        for kw in node.keywords:
            if kw.arg != "dtype":
                continue
            cls = _dtype_class(kw.value, imports, cfg)
            if cls == "f32":
                sources.add(pos)
            elif cls == "f64":
                sanitizers.add(pos)
    return sources, sanitizers


def run_dtype_rule(
    contexts: Sequence[FileContext],
    summaries: Sequence[FileSummary],
    cfg: ResourceConfig,
) -> List[Finding]:
    marked = [FileSummary.from_json(s.to_json()) for s in summaries]
    by_rel: Dict[str, FileSummary] = {s.rel_path: s for s in marked}
    test_paths = {c.rel_path for c in contexts if c.is_test_file}
    for ctx in contexts:
        summary = by_rel.get(ctx.rel_path)
        if summary is None:
            continue
        # textual gate: dtype sources/sanitizers all spell out a float
        # family or an astype call somewhere in the text
        if not (
            "float" in ctx.source
            or "astype" in ctx.source
            or "dtype" in ctx.source
        ):
            continue
        sources, sanitizers = _scan_dtype_calls(ctx, cfg)
        if not sources and not sanitizers:
            continue
        for fn in summary.functions:
            for site in fn.callsites:
                pos = (site.line, site.col)
                if pos in sources:
                    if site.source_kind is None:
                        site.source_kind = "float32"
                elif pos in sanitizers:
                    site.sanitizer = True

    index = ProgramIndex(marked)
    analysis = TaintAnalysis(index, FlowConfig(sinks=tuple(cfg.float64_sinks)))
    analysis.rule_id = "RL016"
    analysis.kind_labels = {"float32": "float32-typed value"}
    analysis.sanitized_kinds = frozenset({"float32"})
    analysis.kinds_of_interest = frozenset({"float32"})
    analysis.skip_sanitized_sinks = True
    analysis.advice = (
        "cast to float64 before this site or move the float32 conversion "
        "downstream; the kernel contract is FFTs in float32, algebra and "
        "fingerprints in float64"
    )
    analysis.solve()
    return [f for f in analysis.find_sink_flows() if f.path not in test_paths]
