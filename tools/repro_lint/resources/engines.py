"""RL018 — engine-capability mismatch.

``DCSSimulator(engine="vector")`` trades features for throughput: the
vectorized engine rejects gossip (``info_period``), rebalancing,
open-system arrivals and the FN/duplicate fault channels *at runtime* —
deep inside a campaign, after hours of cells already ran.  This rule
moves the rejection to lint time: constructor kwargs the restricted
engine refuses, restricted methods called on a vector-bound simulator,
and fault plans carrying unsupported channels into a vector ``run``.

Tracking is local (one function body): a simulator local is
vector-bound when assigned from a constructor whose ``engine`` kwarg is
a restricted literal; a plan local is contaminated when built with a
rejected field (non-zero literal or any non-literal expression) or by a
factory known to set one (``FaultPlan.standard``).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence

from ..engine import FileContext, Finding
from ._common import call_name, finding, iter_functions, receiver_chain
from .config import ResourceConfig

__all__ = ["run_engine_rule"]

_RULE = "RL018"


def _is_restricted_ctor(call: ast.Call, cfg: ResourceConfig) -> Optional[str]:
    """The restricted engine literal of a simulator constructor, if any."""
    if call_name(call) not in cfg.simulator_names:
        return None
    for kw in call.keywords:
        if (
            kw.arg == cfg.engine_kwarg
            and isinstance(kw.value, ast.Constant)
            and kw.value.value in cfg.restricted_engines
        ):
            return str(kw.value.value)
    return None


def _plan_problem(call: ast.Call, cfg: ResourceConfig) -> Optional[str]:
    """Why a fault-plan expression is unsupported on a restricted engine."""
    if isinstance(call.func, ast.Attribute):
        chain = receiver_chain(call.func.value)
        if (
            chain
            and chain[-1] in cfg.fault_plan_names
            and call.func.attr in cfg.rejected_plan_factories
        ):
            return (
                f"{chain[-1]}.{call.func.attr}() sets the FN/duplicate "
                f"channels"
            )
        return None
    if call_name(call) not in cfg.fault_plan_names:
        return None
    bad = []
    for kw in call.keywords:
        if kw.arg not in cfg.rejected_fault_fields:
            continue
        value = kw.value
        if isinstance(value, ast.Constant) and value.value in (0, 0.0, None):
            continue
        bad.append(kw.arg)
    if bad:
        return f"plan sets {', '.join(sorted(bad))}"
    return None


def _check_function(
    ctx: FileContext, fn: ast.FunctionDef, cfg: ResourceConfig
) -> List[Finding]:
    findings: List[Finding] = []
    vector_locals: Dict[str, int] = {}
    plan_problems: Dict[str, str] = {}

    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            engine = _is_restricted_ctor(node.value, cfg)
            problem = _plan_problem(node.value, cfg)
            for target in node.targets:
                if not isinstance(target, ast.Name):
                    continue
                if engine is not None:
                    vector_locals[target.id] = node.lineno
                if problem is not None:
                    plan_problems[target.id] = problem

    def plan_value_problem(value: ast.expr) -> Optional[str]:
        if isinstance(value, ast.Call):
            return _plan_problem(value, cfg)
        if isinstance(value, ast.Name):
            return plan_problems.get(value.id)
        return None

    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        engine = _is_restricted_ctor(node, cfg)
        if engine is not None:
            for kw in node.keywords:
                if kw.arg in cfg.rejected_sim_kwargs and not (
                    isinstance(kw.value, ast.Constant) and kw.value.value is None
                ):
                    findings.append(
                        finding(
                            ctx,
                            _RULE,
                            node,
                            f"{kw.arg!r} passed into an "
                            f"engine={engine!r} simulator; the vectorized "
                            f"engine rejects it at runtime — drop the option "
                            f"or use engine='event'",
                        )
                    )
                elif kw.arg in cfg.plan_kwargs:
                    problem = plan_value_problem(kw.value)
                    if problem:
                        findings.append(
                            finding(
                                ctx,
                                _RULE,
                                node,
                                f"fault plan with unsupported channels "
                                f"({problem}) installed on an "
                                f"engine={engine!r} simulator; the vector "
                                f"engine raises on "
                                f"{'/'.join(cfg.rejected_fault_fields)}",
                            )
                        )
            continue

        # method calls on a vector-bound receiver (local name or a
        # chained restricted constructor)
        if not isinstance(node.func, ast.Attribute):
            continue
        recv = node.func.value
        on_vector = (
            isinstance(recv, ast.Name)
            and recv.id in vector_locals
            and node.lineno >= vector_locals[recv.id]
        ) or (
            isinstance(recv, ast.Call)
            and _is_restricted_ctor(recv, cfg) is not None
        )
        if not on_vector:
            continue
        method = node.func.attr
        if method in cfg.rejected_methods:
            findings.append(
                finding(
                    ctx,
                    _RULE,
                    node,
                    f"{method}() called on an engine='vector' simulator; "
                    f"the vectorized engine rejects it at runtime — use "
                    f"engine='event' for this feature",
                )
            )
        elif method in cfg.run_methods:
            for kw in node.keywords:
                if kw.arg not in cfg.plan_kwargs:
                    continue
                problem = plan_value_problem(kw.value)
                if problem:
                    findings.append(
                        finding(
                            ctx,
                            _RULE,
                            node,
                            f"fault plan with unsupported channels "
                            f"({problem}) passed to {method}() on an "
                            f"engine='vector' simulator; the vector engine "
                            f"raises on "
                            f"{'/'.join(cfg.rejected_fault_fields)}",
                        )
                    )
    return findings


def run_engine_rule(
    contexts: Sequence[FileContext], cfg: ResourceConfig
) -> List[Finding]:
    findings: List[Finding] = []
    tokens = (*cfg.simulator_names, *cfg.fault_plan_names)
    for ctx in contexts:
        # textual gate: only files mentioning a simulator or a fault plan
        # can produce an engine-capability mismatch
        if not any(t in ctx.source for t in tokens):
            continue
        for fn in iter_functions(ctx.tree):
            findings.extend(_check_function(ctx, fn, cfg))
    return findings
